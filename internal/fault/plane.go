package fault

import (
	"fmt"

	"scaffe/internal/sim"
)

// DefaultTimeout is the base detection deadline: a fault-aware wait
// that makes no progress for this long consults the plane. It is far
// above any healthy per-operation latency in the modeled cluster, so
// fault-free runs never trip it, and small enough that detection
// latency stays a fraction of an iteration.
const DefaultTimeout = 10 * sim.Millisecond

// maxBackoffShift caps the exponential deadline backoff at
// quantum<<maxBackoffShift, so transient slowness (stragglers, link
// flaps) is ridden out with a bounded number of retries per window.
const maxBackoffShift = 4

// escalateAttempts is the loss-escalation threshold: a wait that has
// ridden the whole backoff ladder past its plateau while the wire
// plane has permanently discarded traffic is not slow — its payload is
// gone, and the plane revokes the communicator instead of retrying
// forever. Two plateau rides past the cap keeps false escalations out
// of merely-degraded runs.
const escalateAttempts = maxBackoffShift + 2

// DefaultJoinRetries is the admission-wait budget of one announce: a
// joiner that rides out this many capped-backoff deadlines without
// being admitted withdraws, cools down, and re-announces (it is
// re-queued, never admitted mid-round and never able to wedge
// training).
const DefaultJoinRetries = 6

// Applier carries out the physical side of injected events on the
// training engine: killing a rank's procs and slowing its device. The
// plane keeps the bookkeeping; the engine owns the objects.
type Applier interface {
	// KillRank fail-stops a rank (Crash and Hang events).
	KillRank(rank int, kind Kind)
	// SetCompute sets a rank's GPU slowdown factor (1 = full speed).
	SetCompute(rank int, factor float64)
}

// BitFlipper is the optional Applier extension for BitFlip events:
// flip bit `bit` of 32-bit word `word` of the rank's resident network
// parameters. Appliers that do not implement it simply never see the
// corruption (the event still counts as injected).
type BitFlipper interface {
	FlipBit(rank, word, bit int)
}

// Joiner is the optional Applier extension for the elastic grow path:
// ReviveRank gives a previously excluded rank a fresh process that
// announces itself and waits for admission (AwaitAdmission). Appliers
// that do not implement it leave Join events inert.
type Joiner interface {
	ReviveRank(rank int)
}

// Recovery describes one detected failure and the shrink that
// absorbed it.
type Recovery struct {
	// Rank is the rank that failed.
	Rank int
	// Kind is Crash or Hang.
	Kind Kind
	// FailedAt is the injection time.
	FailedAt sim.Time
	// DetectedAt is when a survivor's deadline expired and revoked
	// the communicator.
	DetectedAt sim.Time
	// ResumedAt is when the shrunken world released survivors back
	// into training.
	ResumedAt sim.Time
	// RestartIter is the iteration training resumed from.
	RestartIter int
	// Survivors is the world size after the shrink.
	Survivors int
	// RolledBack reports whether survivors restored state from a
	// snapshot (or re-initialized) rather than continuing in place.
	RolledBack bool
}

// DetectionLatency is the injection-to-revocation delay.
func (r Recovery) DetectionLatency() sim.Duration { return r.DetectedAt - r.FailedAt }

// RecoveryTime is the revocation-to-resume delay (shrink + restore).
func (r Recovery) RecoveryTime() sim.Duration { return r.ResumedAt - r.DetectedAt }

// JoinRecord describes one admission through the elastic grow path.
type JoinRecord struct {
	// Rank is the readmitted rank.
	Rank int
	// AnnouncedAt is when the joiner first announced itself.
	AnnouncedAt sim.Time
	// AdmittedAt is when a grow round committed the admission.
	AdmittedAt sim.Time
	// Attempts counts admission-wait deadlines the joiner rode out
	// (capped exponential backoff) before being admitted.
	Attempts int
	// Requeues counts exhausted retry budgets: each one withdrew the
	// announce, cooled down, and re-queued it.
	Requeues int
	// RestartIter is the iteration the grown world resumed from.
	RestartIter int
	// WorldSize is the world size after the grow.
	WorldSize int
}

// AdmissionLatency is the announce-to-admission delay.
func (j JoinRecord) AdmissionLatency() sim.Duration { return j.AdmittedAt - j.AnnouncedAt }

// Report summarizes a faulted run for Result.
type Report struct {
	// Injected counts all scheduled events that fired.
	Injected int
	// Crashes and Hangs count fail-stop injections.
	Crashes, Hangs int
	// Retries counts deadline expiries that were ridden out with
	// backoff (no failed rank: transient slowness, not a fault).
	Retries int
	// SnapshotFailures counts snapshot writes suppressed by
	// SnapshotFail windows.
	SnapshotFailures int
	// BitFlips and WireCorruptions count armed silent-corruption
	// injections (the integrity plane reports what it caught).
	BitFlips, WireCorruptions int
	// Evictions counts ranks removed through the proactive evict path
	// (scripted Evict events plus the straggler policy).
	Evictions int
	// Drops, Dups, Reorders, and Delays count wire perturbations that
	// consumed a landing; PartitionDrops counts landings blackholed by
	// an active partition window.
	Drops, Dups, Reorders, Delays, PartitionDrops int
	// WireRevokes counts loss-aware escalations: deadline ladders
	// exhausted against permanently discarded traffic.
	WireRevokes int
	// Fenced counts ranks parked by the quorum rule during a partition
	// (they rejoin through the join desk after heal).
	Fenced int
	// StaleDissolved counts deliveries dissolved by epoch fencing:
	// traffic stamped with a pre-shrink/grow communicator epoch.
	StaleDissolved int
	// Survivors is the final world size (shrinks and grows included).
	Survivors int
	// Recoveries lists every shrink, in order.
	Recoveries []Recovery
	// Joins lists every admission through the grow path, in order.
	Joins []JoinRecord
	// JoinRequeues counts exhausted admission-retry budgets across all
	// joiners (each one re-queued the announce after a cool-down).
	JoinRequeues int
}

func (r *Report) String() string {
	s := fmt.Sprintf("injected=%d crashes=%d hangs=%d evictions=%d recoveries=%d joins=%d retries=%d snapshot-failures=%d survivors=%d",
		r.Injected, r.Crashes, r.Hangs, r.Evictions, len(r.Recoveries), len(r.Joins), r.Retries, r.SnapshotFailures, r.Survivors)
	if r.Drops+r.Dups+r.Reorders+r.Delays+r.PartitionDrops+r.Fenced+r.StaleDissolved > 0 {
		s += fmt.Sprintf(" drops=%d dups=%d reorders=%d delays=%d partition-drops=%d wire-revokes=%d fenced=%d stale-dissolved=%d",
			r.Drops, r.Dups, r.Reorders, r.Delays, r.PartitionDrops, r.WireRevokes, r.Fenced, r.StaleDissolved)
	}
	return s
}

// recoveryRound is one leaderless all-survivor rendezvous: every
// surviving rank that observes the revocation enters, and the round
// releases — running the engine's rebuild hook first — once every
// rank currently alive has arrived.
type recoveryRound struct {
	arrived []bool
	count   int
	done    *sim.Completion
}

// wireCorruption is one armed CorruptWire event: a countdown of
// checksummed transfers on a directed link, consumed exactly once.
type wireCorruption struct {
	src, dst  int
	countdown int
}

// linkWindow is one active LinkDegrade interval.
type linkWindow struct {
	node        int
	factor      float64
	from, until sim.Time
}

// Plane is the armed fault-injection and failure-detection state of
// one run. All methods run under the kernel's cooperative scheduling,
// so there is no locking.
type Plane struct {
	k       *sim.Kernel
	quantum sim.Duration
	total   int
	applier Applier
	rebuild func() int

	// excluded ranks have been shrunk out of the world; failed ranks
	// are dead but not yet absorbed by a shrink; departed ranks
	// finished (or died) and will never join a recovery rendezvous.
	excluded []bool
	failed   []bool
	departed []bool
	failRec  []Recovery // partial record per failed rank
	revoked  bool

	round *recoveryRound

	// The join desk. pending holds announced ranks waiting for a grow
	// round; admitting holds the pending set locked in by BeginGrow (a
	// locked joiner can no longer withdraw — its admission commits with
	// the round). joining marks ranks with a live joiner proc; evicted
	// marks ranks removed by the evict path (a later recover event
	// readmits them); rejoinQueued defers a join that arrived while the
	// rank was failed-but-not-yet-excluded. admitted is the last
	// committed round's admissions, for the rebuild hook.
	pending      []int
	admitting    []int
	joining      []bool
	evicted      []bool
	rejoinQueued []bool
	joinRec      []JoinRecord // partial record per joining rank
	admitted     []int
	admitDone    *sim.Completion
	joinBudget   int

	stallUntil    []sim.Time
	links         []linkWindow
	snapFailUntil sim.Time
	snapFailOnce  bool
	wires         []*wireCorruption

	// The wire-perturbation plane. wireOn flips once the first wire
	// rule or partition window arms, gating the per-landing fate check
	// behind a single branch; trafficLost records that at least one
	// payload has been permanently discarded since the last committed
	// recovery round, arming the loss-aware timeout escalation.
	// rootRank is the engine's parameter root — the anchor of the
	// partition quorum rule.
	wireRules   []*wireRule
	parts       []*partitionWindow
	wireOn      bool
	trafficLost bool
	rootRank    int

	backoff Backoff

	report Report
}

// NewPlane returns an un-armed plane for a world of `ranks` ranks.
// A zero quantum uses DefaultTimeout.
func NewPlane(k *sim.Kernel, ranks int, quantum sim.Duration) *Plane {
	if quantum <= 0 {
		quantum = DefaultTimeout
	}
	return &Plane{
		k:            k,
		quantum:      quantum,
		total:        ranks,
		excluded:     make([]bool, ranks),
		failed:       make([]bool, ranks),
		departed:     make([]bool, ranks),
		failRec:      make([]Recovery, ranks),
		stallUntil:   make([]sim.Time, ranks),
		joining:      make([]bool, ranks),
		evicted:      make([]bool, ranks),
		rejoinQueued: make([]bool, ranks),
		joinRec:      make([]JoinRecord, ranks),
		joinBudget:   DefaultJoinRetries,
		backoff:      Backoff{Quantum: quantum, MaxShift: maxBackoffShift},
	}
}

// SetRoot tells the plane which rank anchors the partition quorum
// rule (the engine's parameter root). Re-set after every rebuild —
// the root can move when the world shrinks.
func (pl *Plane) SetRoot(rank int) { pl.rootRank = rank }

// SetJoinRetries overrides the per-announce admission-wait budget
// (zero or negative keeps DefaultJoinRetries).
func (pl *Plane) SetJoinRetries(n int) {
	if n > 0 {
		pl.joinBudget = n
	}
}

// Arm schedules every event of the script on the kernel. Call it
// after the world's ranks are spawned and before the kernel runs.
func (pl *Plane) Arm(sched Schedule, ap Applier) {
	pl.applier = ap
	pl.report.Survivors = pl.total
	for _, ev := range sched {
		ev := ev
		pl.k.At(ev.At, func() { pl.apply(ev) })
	}
}

// OnRebuild registers the engine's shrink-and-restore hook. It runs
// exactly once per recovery round, at release time, with every
// surviving rank parked in EnterRecovery; it returns the iteration
// training resumes from.
func (pl *Plane) OnRebuild(fn func() int) { pl.rebuild = fn }

// apply executes one scheduled event in kernel context.
func (pl *Plane) apply(ev Event) {
	now := pl.k.Now()
	switch ev.Kind {
	case Crash, Hang:
		if !pl.Alive(ev.Rank) {
			return // already dead; nothing left to kill
		}
		pl.report.Injected++
		if ev.Kind == Crash {
			pl.report.Crashes++
		} else {
			pl.report.Hangs++
		}
		pl.failed[ev.Rank] = true
		pl.failRec[ev.Rank] = Recovery{Rank: ev.Rank, Kind: ev.Kind, FailedAt: now}
		pl.applier.KillRank(ev.Rank, ev.Kind)
		// If the dead rank had already reached a recovery rendezvous,
		// un-count it and re-check: the survivors must not wait for a
		// corpse.
		if pl.round != nil && pl.round.arrived[ev.Rank] {
			pl.round.arrived[ev.Rank] = false
			pl.round.count--
		}
		pl.checkRelease()
	case StragglerOn:
		pl.report.Injected++
		pl.applier.SetCompute(ev.Rank, ev.Factor)
	case StragglerOff:
		pl.report.Injected++
		pl.applier.SetCompute(ev.Rank, 1)
		// A recovered rank that the evict path removed is readmitted
		// through the join path: the recover event is the self-healing
		// loop's re-entry point.
		if pl.evicted[ev.Rank] {
			pl.startJoin(ev.Rank)
		}
	case Evict:
		if !pl.Alive(ev.Rank) {
			return // already out; nothing to evict
		}
		pl.report.Injected++
		pl.evict(ev.Rank)
	case Join:
		pl.report.Injected++
		pl.startJoin(ev.Rank)
	case LinkDegrade:
		pl.report.Injected++
		pl.links = append(pl.links, linkWindow{node: ev.Node, factor: ev.Factor, from: now, until: now + ev.For})
	case ReaderStall:
		pl.report.Injected++
		if until := now + ev.For; until > pl.stallUntil[ev.Rank] {
			pl.stallUntil[ev.Rank] = until
		}
	case SnapshotFail:
		pl.report.Injected++
		if ev.For <= 0 {
			pl.snapFailOnce = true
		} else if until := now + ev.For; until > pl.snapFailUntil {
			pl.snapFailUntil = until
		}
	case BitFlip:
		if !pl.Alive(ev.Rank) {
			return // nothing resident to corrupt
		}
		pl.report.Injected++
		pl.report.BitFlips++
		if fb, ok := pl.applier.(BitFlipper); ok {
			fb.FlipBit(ev.Rank, ev.Word, ev.Bit)
		}
	case CorruptWire:
		pl.report.Injected++
		pl.report.WireCorruptions++
		pl.wires = append(pl.wires, &wireCorruption{src: ev.Src, dst: ev.Dst, countdown: ev.N})
	case Drop, Dup, Reorder, Delay:
		pl.report.Injected++
		pl.wireRules = append(pl.wireRules, &wireRule{kind: ev.Kind, src: ev.Src, dst: ev.Dst, n: ev.N, hold: ev.For, from: now})
		pl.wireOn = true
	case Partition:
		pl.report.Injected++
		pl.parts = append(pl.parts, &partitionWindow{groups: ev.Groups, from: now, until: now + ev.For})
		pl.wireOn = true
	}
}

// WireCorrupt is the integrity plane's injection hook: called once per
// checksummed transfer on the directed link src->dst, it counts down
// every armed corruption on that link and reports whether this
// transfer is the one a corruption lands on. Each armed event fires
// exactly once.
func (pl *Plane) WireCorrupt(src, dst int) bool {
	hit := false
	for _, wc := range pl.wires {
		if wc.src != src || wc.dst != dst || wc.countdown <= 0 {
			continue
		}
		wc.countdown--
		if wc.countdown == 0 {
			hit = true
		}
	}
	return hit
}

// evict removes an alive rank through the shrink path: a controlled,
// instantly detected departure. Unlike a crash, no deadline has to
// expire for the revocation to be discovered — the evictor initiated
// it, so detection stamps at the same instant.
func (pl *Plane) evict(rank int) {
	now := pl.k.Now()
	pl.report.Evictions++
	pl.failed[rank] = true
	pl.evicted[rank] = true
	pl.failRec[rank] = Recovery{Rank: rank, Kind: Evict, FailedAt: now, DetectedAt: now}
	pl.applier.KillRank(rank, Evict)
	pl.setRevoked(now)
	if pl.round != nil && pl.round.arrived[rank] {
		pl.round.arrived[rank] = false
		pl.round.count--
	}
	pl.checkRelease()
}

// EvictRank is the engine's straggler-policy entry point: proactively
// remove an alive rank through the shrink path. A no-op when the rank
// is not alive.
//
//scaffe:coldpath an eviction commits a membership change and triggers a full communicator rebuild; a rare fault event, not steady state
func (pl *Plane) EvictRank(rank int) {
	if !pl.Alive(rank) {
		return
	}
	pl.evict(rank)
}

// startJoin revives an excluded rank's joiner process. A join landing
// on a failed-but-not-yet-excluded rank is deferred until the round
// that excludes it commits; alive or already-joining ranks are left
// alone.
func (pl *Plane) startJoin(rank int) {
	if pl.failed[rank] {
		pl.rejoinQueued[rank] = true
		return
	}
	if !pl.excluded[rank] || pl.joining[rank] {
		return
	}
	j, ok := pl.applier.(Joiner)
	if !ok {
		return
	}
	pl.joining[rank] = true
	pl.departed[rank] = false
	pl.joinRec[rank] = JoinRecord{Rank: rank, AnnouncedAt: pl.k.Now()}
	j.ReviveRank(rank)
}

// announce registers rank at the join desk (idempotent) and returns
// the completion the next committed grow round fires.
func (pl *Plane) announce(rank int) *sim.Completion {
	if pl.admitDone == nil {
		pl.admitDone = pl.k.NewCompletion()
	}
	if !intsContain(pl.pending, rank) && !intsContain(pl.admitting, rank) {
		pl.pending = append(pl.pending, rank)
	}
	return pl.admitDone
}

// withdraw removes rank's announce from the pending queue, reporting
// whether it was withdrawable. Announces locked in by BeginGrow are
// not — their admission commits with the round.
func (pl *Plane) withdraw(rank int) bool {
	if intsContain(pl.admitting, rank) {
		return false
	}
	for i, r := range pl.pending {
		if r == rank {
			pl.pending = append(pl.pending[:i], pl.pending[i+1:]...)
			return true
		}
	}
	return false
}

// AwaitAdmission parks a revived rank's proc until a grow round admits
// it, riding out busy admit windows with the same capped exponential
// backoff as failure detection. A wait that exhausts its retry budget
// withdraws the announce, cools down, and re-queues it — bounded
// retries, graceful degradation, and it can never wedge training. It
// reports false (giving up entirely) only when no participant is left
// to admit the joiner.
func (pl *Plane) AwaitAdmission(rank int, p *sim.Proc) bool {
	rec := &pl.joinRec[rank]
	attempt := 0
	for {
		c := pl.announce(rank)
		rec.Attempts++
		if p.WaitTimeout(c, pl.Timeout(attempt)) {
			return true
		}
		if pl.participants() == 0 {
			pl.abandonJoin(rank)
			return false
		}
		attempt++
		if attempt >= pl.joinBudget && pl.withdraw(rank) {
			rec.Requeues++
			pl.report.JoinRequeues++
			attempt = 0
			p.Sleep(pl.backoff.Ceiling())
		}
	}
}

// abandonJoin cancels a joiner that found nobody left to admit it.
func (pl *Plane) abandonJoin(rank int) {
	pl.withdraw(rank)
	pl.joining[rank] = false
}

// JoinPending reports whether any announced joiner is waiting for an
// admit window.
func (pl *Plane) JoinPending() bool { return len(pl.pending) > 0 }

// BeginGrow opens the admit window at an iteration boundary: pending
// announces lock in (no longer withdrawable) and the communicator is
// revoked so every member unwinds into the grow round's rendezvous.
// The root calls it; a no-op while nothing is pending or a round is
// already converging.
//
//scaffe:coldpath elastic-join admission runs only when a join is pending at an iteration boundary
func (pl *Plane) BeginGrow() {
	if len(pl.pending) == 0 || pl.revoked {
		return
	}
	pl.admitting = append(pl.admitting, pl.pending...)
	pl.pending = pl.pending[:0]
	pl.revoked = true
}

// Admitted returns the ranks the committing round admitted; valid
// inside the rebuild hook (the slice is reused across rounds).
func (pl *Plane) Admitted() []int { return pl.admitted }

// AnnouncedAt returns the announce time of rank's current join record
// (valid inside the rebuild hook for admitted ranks).
func (pl *Plane) AnnouncedAt(rank int) sim.Time { return pl.joinRec[rank].AnnouncedAt }

func intsContain(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Revoke revokes the communicator without a dead rank behind it — the
// integrity plane's escalation path when a chunk stays corrupted past
// its retry budget, and the watchdog's micro-rollback trigger. Every
// fault-aware wait observes the revocation at its next deadline and
// unwinds into the recovery rendezvous; with zero failed ranks the
// release shrinks nothing and just re-runs the engine's rebuild hook.
func (pl *Plane) Revoke() { pl.setRevoked(pl.k.Now()) }

// setRevoked marks the communicator revoked and, on the un-revoked →
// revoked transition during an active partition window, schedules the
// quorum decision into kernel context (it kills ranks, which must not
// happen from inside one of their own waits).
func (pl *Plane) setRevoked(now sim.Time) {
	was := pl.revoked
	pl.revoked = true
	if !was {
		pl.scheduleQuorum(now)
	}
}

// Timeout returns the detection deadline for the given retry attempt:
// the shared capped-exponential Backoff ladder, so healthy-but-slow
// operations (stragglers, degraded links) are ridden out with a
// bounded number of retries. The join desk steps the same ladder.
func (pl *Plane) Timeout(attempt int) sim.Duration {
	return pl.backoff.Step(attempt)
}

// Revoked reports whether the communicator is revoked: a failure has
// been detected and survivors are converging on recovery.
func (pl *Plane) Revoked() bool { return pl.revoked }

// OnTimeout is called by a rank whose wait deadline expired without
// progress, carrying the attempt number of the expired deadline. It
// returns true if the communicator is (now) revoked — the caller must
// abandon the operation and enter recovery — and false if the stall
// has no dead rank behind it, in which case the caller retries with
// backoff. When the wire plane has permanently discarded traffic, a
// wait that has ridden the ladder past escalateAttempts revokes even
// with every rank alive: the payload it is waiting for no longer
// exists, and no amount of patience delivers it.
func (pl *Plane) OnTimeout(rank, attempt int, now sim.Time) bool {
	if pl.revoked {
		return true
	}
	for i := range pl.failed {
		if pl.failed[i] {
			pl.setRevoked(now)
			// Stamp detection on every pending failure: this one
			// deadline discovered them all.
			for j := range pl.failed {
				if pl.failed[j] && pl.failRec[j].DetectedAt == 0 {
					pl.failRec[j].DetectedAt = now
				}
			}
			return true
		}
	}
	if pl.trafficLost && attempt >= escalateAttempts {
		pl.report.WireRevokes++
		pl.setRevoked(now)
		return true
	}
	pl.report.Retries++
	return false
}

// EnterRecovery parks rank's main proc until every surviving rank has
// arrived and the shrink/rebuild has run. Ranks call it after
// observing a revocation.
func (pl *Plane) EnterRecovery(rank int, p *sim.Proc) {
	if pl.round == nil {
		pl.round = &recoveryRound{arrived: make([]bool, pl.total), done: pl.k.NewCompletion()}
	}
	rd := pl.round
	if !rd.arrived[rank] {
		rd.arrived[rank] = true
		rd.count++
	}
	pl.checkRelease()
	p.Wait(rd.done) // returns immediately if checkRelease fired it
}

// checkRelease releases the current recovery round once every alive
// rank has arrived: it commits the membership change (failed →
// excluded, announced joiners → members, clears the revocation), runs
// the engine's rebuild hook, stamps the new recovery and join records,
// and wakes everyone — survivors and admitted joiners together. Safe
// to call any time; it is a no-op until the round is complete.
func (pl *Plane) checkRelease() {
	rd := pl.round
	if rd == nil || rd.count == 0 || rd.count != pl.participants() {
		return
	}
	pl.round = nil
	now := pl.k.Now()
	first := len(pl.report.Recoveries)
	for i := range pl.failed {
		if !pl.failed[i] {
			continue
		}
		pl.failed[i] = false
		pl.excluded[i] = true
		rec := pl.failRec[i]
		if rec.DetectedAt == 0 {
			rec.DetectedAt = now
		}
		rec.ResumedAt = now
		pl.report.Recoveries = append(pl.report.Recoveries, rec)
	}
	// Admit every announced joiner: excluded → member. Admissions ride
	// whatever round commits first — the grow round the root opened, or
	// a shrink round that happened to converge in the same admit window
	// (a join under fire).
	pl.admitted = pl.admitted[:0]
	pl.takeJoins(pl.admitting)
	pl.takeJoins(pl.pending)
	pl.admitting = pl.admitting[:0]
	pl.pending = pl.pending[:0]
	sortInts(pl.admitted)
	pl.revoked = false
	// A committed round restores consistency (rollback or rebuild), so
	// earlier payload loss no longer dooms in-flight waits.
	pl.trafficLost = false
	pl.report.Survivors = pl.AliveCount()
	restart := 0
	if pl.rebuild != nil {
		restart = pl.rebuild()
	}
	for i := first; i < len(pl.report.Recoveries); i++ {
		pl.report.Recoveries[i].RestartIter = restart
		pl.report.Recoveries[i].Survivors = pl.report.Survivors
	}
	for _, r := range pl.admitted {
		rec := pl.joinRec[r]
		rec.AdmittedAt = now
		rec.RestartIter = restart
		rec.WorldSize = pl.report.Survivors
		pl.report.Joins = append(pl.report.Joins, rec)
	}
	if len(pl.admitted) > 0 && pl.admitDone != nil {
		done := pl.admitDone
		pl.admitDone = nil // the next announce gets a fresh round
		done.Fire()
	}
	// Joins that arrived while their rank was still failed start now
	// that the round excluded it (a recover event racing an eviction).
	for i := range pl.rejoinQueued {
		if pl.rejoinQueued[i] && pl.excluded[i] {
			pl.rejoinQueued[i] = false
			pl.startJoin(i)
		}
	}
	rd.done.Fire()
}

// takeJoins admits the announced ranks in list (skipping any that are
// no longer excluded) into pl.admitted.
func (pl *Plane) takeJoins(list []int) {
	for _, r := range list {
		if !pl.excluded[r] {
			continue
		}
		pl.excluded[r] = false
		pl.joining[r] = false
		pl.evicted[r] = false
		pl.departed[r] = false
		pl.admitted = append(pl.admitted, r)
	}
}

// sortInts is an allocation-free insertion sort for the tiny admitted
// slice (a handful of ranks at most).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// NoteRollback marks the latest batch of recovery records as having
// restored state from a snapshot rather than continuing in place.
func (pl *Plane) NoteRollback(n int) {
	for i := len(pl.report.Recoveries) - n; i < len(pl.report.Recoveries); i++ {
		if i >= 0 {
			pl.report.Recoveries[i].RolledBack = true
		}
	}
}

// Depart marks a rank as finished with training (normally or by
// dying): recovery rendezvous must not wait for it. Re-checks the
// current round, since the departure may be what completes it.
func (pl *Plane) Depart(rank int) {
	pl.departed[rank] = true
	pl.checkRelease()
}

// participants counts the ranks a recovery rendezvous must gather:
// alive and still training.
func (pl *Plane) participants() int {
	n := 0
	for i := 0; i < pl.total; i++ {
		if pl.Alive(i) && !pl.departed[i] {
			n++
		}
	}
	return n
}

// Alive reports whether a rank is neither failed nor excluded.
func (pl *Plane) Alive(rank int) bool { return !pl.failed[rank] && !pl.excluded[rank] }

// AliveCount returns the number of alive ranks.
func (pl *Plane) AliveCount() int {
	n := 0
	for i := 0; i < pl.total; i++ {
		if pl.Alive(i) {
			n++
		}
	}
	return n
}

// AliveRanks returns the alive ranks in ascending order.
func (pl *Plane) AliveRanks() []int {
	var out []int
	for i := 0; i < pl.total; i++ {
		if pl.Alive(i) {
			out = append(out, i)
		}
	}
	return out
}

// ActiveRanks returns the ranks still training — alive and not
// departed — in ascending order. This is the membership a recovery
// rebuild must hand the new communicator: a departed rank is alive
// (it finished normally, it did not fail) but its training loop has
// returned, so a collective that includes it waits forever. The
// rendezvous gathers exactly these ranks (see participants), and the
// rebuilt world must match.
func (pl *Plane) ActiveRanks() []int {
	var out []int
	for i := 0; i < pl.total; i++ {
		if pl.Alive(i) && !pl.departed[i] {
			out = append(out, i)
		}
	}
	return out
}

// StallUntil returns the time until which rank's reader is frozen
// (zero / the past when it is not).
func (pl *Plane) StallUntil(rank int) sim.Time { return pl.stallUntil[rank] }

// LinkFactor returns the wire-time multiplier for an inter-node
// transfer leaving srcNode at virtual time `at` (1 = healthy). It has
// the signature of topology's link-fault hook.
func (pl *Plane) LinkFactor(at sim.Time, srcNode, dstNode int) float64 {
	f := 1.0
	for _, w := range pl.links {
		if w.node == srcNode && at >= w.from && at < w.until && w.factor > f {
			f = w.factor
		}
	}
	return f
}

// SnapshotFailing reports whether a snapshot write at `now` fails,
// counting it in the report when it does.
func (pl *Plane) SnapshotFailing(now sim.Time) bool {
	if pl.snapFailOnce {
		pl.snapFailOnce = false
		pl.report.SnapshotFailures++
		return true
	}
	if now < pl.snapFailUntil {
		pl.report.SnapshotFailures++
		return true
	}
	return false
}

// Report returns the run's fault summary.
func (pl *Plane) Report() *Report { return &pl.report }
