package core

import (
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"scaffe/internal/fault"
	"scaffe/internal/models"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

func TestTimingEvictAndRejoin(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 8, 64, 10)
	base := midRun(t, cfg, 1.0)
	cfg.Faults = fault.Schedule{
		{At: sim.Time(float64(base) * 0.4), Kind: fault.Evict, Rank: 5},
		{At: sim.Time(float64(base) * 0.7), Kind: fault.Join, Rank: 5},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Fault
	if rep.Evictions != 1 || len(rep.Recoveries) < 1 {
		t.Fatalf("report = %v", rep)
	}
	if rec := rep.Recoveries[0]; rec.Kind != fault.Evict || rec.Rank != 5 || rec.DetectionLatency() != 0 {
		t.Errorf("eviction recovery = %+v", rec)
	}
	if len(rep.Joins) != 1 {
		t.Fatalf("joins = %+v", rep.Joins)
	}
	j := rep.Joins[0]
	if j.Rank != 5 || j.WorldSize != 8 || j.AdmissionLatency() < 0 {
		t.Errorf("join record = %+v", j)
	}
	if rep.Survivors != 8 {
		t.Errorf("final world size = %d, want 8 (rank rejoined)", rep.Survivors)
	}
}

// TestRealJoinAfterCrashBitExact is the tentpole's acceptance check at
// tiny scale: crash a rank, rejoin it later, and require the grown
// world's losses and final parameters to be bit-identical to a golden
// run started at the original world size from the rejoin iteration's
// snapshot.
func TestRealJoinAfterCrashBitExact(t *testing.T) {
	dir := t.TempDir()
	const iters, every = 24, 4
	cfg := tinyRealConfig(4, 32, iters)
	cfg.SnapshotEvery = every
	cfg.SnapshotPrefix = filepath.Join(dir, "calib")
	mid := midRun(t, cfg, 0.45)

	cfg.SnapshotPrefix = filepath.Join(dir, "elastic")
	cfg.Faults = fault.Schedule{
		{At: mid, Kind: fault.Crash, Rank: 3},
		{At: sim.Time(float64(mid) * 1.6), Kind: fault.Join, Rank: 3},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Fault
	if rep.Crashes != 1 || len(rep.Joins) != 1 {
		t.Fatalf("report = %v", rep)
	}
	j := rep.Joins[0]
	if j.Rank != 3 || j.WorldSize != 4 || rep.Survivors != 4 {
		t.Fatalf("join = %+v, survivors = %d (run must end at the original world size)", j, rep.Survivors)
	}
	if len(res.Losses) != iters {
		t.Fatalf("got %d losses, want %d", len(res.Losses), iters)
	}

	// Golden: an uninterrupted 4-rank run resumed from the snapshot the
	// grow round rolled back to, starting at the rejoin iteration.
	if j.RestartIter <= 0 || j.RestartIter%every != 0 {
		t.Fatalf("restart iteration %d is not a snapshot boundary", j.RestartIter)
	}
	snapPath := snapshotPath(cfg.SnapshotPrefix, j.RestartIter-1)
	golden := tinyRealConfig(4, 32, iters)
	golden.ResumeFrom = snapPath
	golden.StartIteration = j.RestartIter
	gres, err := Run(golden)
	if err != nil {
		t.Fatal(err)
	}
	tail := res.Losses[j.RestartIter:]
	if len(gres.Losses) != len(tail) {
		t.Fatalf("golden recorded %d losses, want %d", len(gres.Losses), len(tail))
	}
	for i := range tail {
		if tail[i] != gres.Losses[i] {
			t.Fatalf("loss %d after rejoin: %v != golden %v (catch-up replay is not bit-exact)",
				j.RestartIter+i, tail[i], gres.Losses[i])
		}
	}
	if len(res.FinalParams) != len(gres.FinalParams) {
		t.Fatalf("param count mismatch: %d vs %d", len(res.FinalParams), len(gres.FinalParams))
	}
	for i := range res.FinalParams {
		if res.FinalParams[i] != gres.FinalParams[i] {
			t.Fatalf("param %d: %v != golden %v", i, res.FinalParams[i], gres.FinalParams[i])
		}
	}
}

// TestJoinUnderFire lands a second crash in the same admit window as a
// join: the admission rides whichever recovery round commits, and the
// run still converges to the right membership.
func TestJoinUnderFire(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 4, 16, 10)
	base := midRun(t, cfg, 1.0)
	at := func(f float64) sim.Time { return sim.Time(float64(base) * f) }
	cfg.Faults = fault.Schedule{
		{At: at(0.3), Kind: fault.Crash, Rank: 2},
		{At: at(0.6), Kind: fault.Join, Rank: 2},
		{At: at(0.6) + sim.Time(sim.Millisecond), Kind: fault.Crash, Rank: 1},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Fault
	if rep.Crashes != 2 || len(rep.Joins) != 1 || rep.Joins[0].Rank != 2 {
		t.Fatalf("report = %v, joins = %+v", rep, rep.Joins)
	}
	// Started with 4, lost rank 1 for good, rank 2 came back: 3 left.
	if rep.Survivors != 3 {
		t.Errorf("survivors = %d, want 3", rep.Survivors)
	}
}

// TestEvictStragglerAndReadmit drives the autonomous membership policy
// end to end: a straggling rank is evicted after EvictWindow slow
// iterations, then readmitted through the join path when it recovers.
func TestEvictStragglerAndReadmit(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 8, 64, 14)
	base := midRun(t, cfg, 1.0)
	cfg.EvictFactor = 2
	cfg.EvictWindow = 2
	cfg.Faults = fault.Schedule{
		{At: sim.Time(float64(base) * 0.25), Kind: fault.StragglerOn, Rank: 6, Factor: 8},
		{At: sim.Time(float64(base) * 0.9), Kind: fault.StragglerOff, Rank: 6},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Fault
	if rep.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (report %v)", rep.Evictions, rep)
	}
	var evicted *fault.Recovery
	for i := range rep.Recoveries {
		if rep.Recoveries[i].Kind == fault.Evict {
			evicted = &rep.Recoveries[i]
		}
	}
	if evicted == nil || evicted.Rank != 6 {
		t.Fatalf("no evict recovery for rank 6: %+v", rep.Recoveries)
	}
	if len(rep.Joins) != 1 || rep.Joins[0].Rank != 6 {
		t.Fatalf("joins = %+v, want rank 6 readmitted on recovery", rep.Joins)
	}
	if rep.Survivors != 8 {
		t.Errorf("survivors = %d, want 8", rep.Survivors)
	}
}

// TestGrowArmedUntrippedByteIdentical pins the zero-perturbation bar:
// arming the whole grow plane — straggler policy and a join event that
// never trips (its target is alive) — must leave every observable
// output byte-identical to the established armed-but-idle baseline.
func TestGrowArmedUntrippedByteIdentical(t *testing.T) {
	base := tinyRealConfig(4, 32, 12)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	far := ref.TotalTime * 1000

	idle := tinyRealConfig(4, 32, 12)
	idle.Faults = fault.Schedule{{At: far, Kind: fault.StragglerOff, Rank: 0}}
	a, err := Run(idle)
	if err != nil {
		t.Fatal(err)
	}

	grow := tinyRealConfig(4, 32, 12)
	grow.EvictFactor = 4
	grow.EvictWindow = 3
	grow.Faults = fault.Schedule{{At: far, Kind: fault.Join, Rank: 0}}
	b, err := Run(grow)
	if err != nil {
		t.Fatal(err)
	}

	if a.TotalTime != b.TotalTime {
		t.Errorf("grow plane changed total time: %v vs %v", b.TotalTime, a.TotalTime)
	}
	if !reflect.DeepEqual(a.Losses, b.Losses) {
		t.Error("grow plane changed the loss curve")
	}
	if !reflect.DeepEqual(a.FinalParams, b.FinalParams) {
		t.Error("grow plane changed the final parameters")
	}
	if b.Fault == nil || len(b.Fault.Recoveries) != 0 || len(b.Fault.Joins) != 0 || b.Fault.Evictions != 0 {
		t.Errorf("untripped grow plane reported activity: %v", b.Fault)
	}
}

// TestMembershipTickAllocFree pins the hot-path policy's allocation
// budget: one straggler-policy tick on a healthy armed world must not
// allocate.
func TestMembershipTickAllocFree(t *testing.T) {
	k := sim.New()
	cluster := topology.New(k, "alloc", 1, 4, topology.DefaultParams())
	world := mpi.NewWorld(cluster, 4)
	pl := fault.NewPlane(k, 4, 0)
	st := &runState{
		cfg:         &Config{Design: SCB, EvictFactor: 2, EvictWindow: 3},
		world:       world,
		comm:        world.WorldComm(),
		ft:          pl,
		iterEWMA:    []float64{1.0, 1.1, 0.9, 1.05},
		slowStreak:  make([]int, 4),
		ewmaScratch: make([]float64, 0, 4),
	}
	r := world.Ranks[0]
	if allocs := testing.AllocsPerRun(200, func() { st.membershipTick(r) }); allocs != 0 {
		t.Errorf("membershipTick allocates %.1f times per call, want 0", allocs)
	}
}

// TestGoogLeNet32CrashRecoverJoinDeterministic is the scale drill:
// crash -> recover -> join on a 32-rank GoogLeNet run must end at the
// original world size with a virtual-time outcome (total time, full
// fault report, join retry/backoff accounting) invariant across
// GOMAXPROCS settings.
func TestGoogLeNet32CrashRecoverJoinDeterministic(t *testing.T) {
	cfg := timingConfig(models.GoogLeNet(), 32, 256, 6)
	cfg.Nodes = 8
	cfg.GPUsPerNode = 4
	base := midRun(t, cfg, 1.0)
	cfg.Faults = fault.Schedule{
		{At: sim.Time(float64(base) * 0.4), Kind: fault.Crash, Rank: 31},
		{At: sim.Time(float64(base) * 0.8), Kind: fault.Join, Rank: 31},
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var first *Result
	for _, procs := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(procs)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		rep := res.Fault
		if rep.Crashes != 1 || len(rep.Joins) != 1 || rep.Joins[0].Rank != 31 || rep.Survivors != 32 {
			t.Fatalf("GOMAXPROCS=%d: report = %v, joins = %+v", procs, rep, rep.Joins)
		}
		if first == nil {
			first = res
			continue
		}
		if res.TotalTime != first.TotalTime {
			t.Errorf("GOMAXPROCS=%d: total time %v != %v", procs, res.TotalTime, first.TotalTime)
		}
		if !reflect.DeepEqual(res.Fault, first.Fault) {
			t.Errorf("GOMAXPROCS=%d: fault report diverged:\n%+v\n%+v", procs, res.Fault, first.Fault)
		}
	}
}

func TestElasticConfigValidation(t *testing.T) {
	spec, _ := models.ByName("tiny")
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"fractional evict factor", func(c *Config) { c.EvictFactor = 0.5 }},
		{"negative evict window", func(c *Config) { c.EvictFactor = 2; c.EvictWindow = -1 }},
		{"negative join retries", func(c *Config) { c.JoinRetries = -2 }},
		{"eviction on unsupported design", func(c *Config) {
			c.Design = ParamServer
			c.GlobalBatch = 3
			c.EvictFactor = 2
		}},
	}
	for _, tc := range cases {
		cfg := timingConfig(spec, 4, 16, 2)
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}
