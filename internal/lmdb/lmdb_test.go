package lmdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func buildStore(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.slmdb")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%08d", i)
		val := bytes.Repeat([]byte{byte(i)}, 100+i%7)
		if err := w.Put([]byte(key), val); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Fatalf("Count = %d, want %d", w.Count(), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPutGetRoundTrip(t *testing.T) {
	path := buildStore(t, 50)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 50 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("%08d", i)
		val, err := r.Get(key)
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		want := bytes.Repeat([]byte{byte(i)}, 100+i%7)
		if !bytes.Equal(val, want) {
			t.Fatalf("Get(%s) = %d bytes, want %d", key, len(val), len(want))
		}
	}
}

func TestKeysSorted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "o.slmdb")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"zebra", "apple", "mango"} {
		if err := w.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := []string{"apple", "mango", "zebra"}
	for i, k := range want {
		if r.KeyAt(i) != k {
			t.Fatalf("KeyAt(%d) = %q, want %q (cursor order)", i, r.KeyAt(i), k)
		}
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.slmdb")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Put([]byte("k"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Put([]byte("k"), []byte("2")); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestMissingKey(t *testing.T) {
	r, err := Open(buildStore(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Get("nope"); err == nil {
		t.Error("missing key returned no error")
	}
}

func TestConcurrentReaders(t *testing.T) {
	// The real LMDB property we rely on: many goroutines reading one
	// environment concurrently and safely.
	r, err := Open(buildStore(t, 200))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := r.KeyAt((i*7 + g) % r.Len())
				if _, err := r.Get(key); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := buildStore(t, 5)
	// Flip a byte inside the first record's value.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err) // index is at the end, still intact
	}
	defer r.Close()
	if _, err := r.Get("00000000"); err == nil {
		t.Error("corrupted record passed checksum")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a store at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("garbage file opened without error")
	}
	short := filepath.Join(t.TempDir(), "short")
	if err := os.WriteFile(short, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short); err == nil {
		t.Error("too-short file opened without error")
	}
}

func TestEmptyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.slmdb")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 0 {
		t.Errorf("empty store Len = %d", r.Len())
	}
}

func TestCorruptIndexOffsetRejected(t *testing.T) {
	path := buildStore(t, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The footer is [indexOff:8][magic:7]; point indexOff past EOF.
	footStart := len(raw) - 8 - len([]byte("SLMDB1\n"))
	for i := 0; i < 8; i++ {
		raw[footStart+i] = 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("corrupt index offset accepted")
	}
}

func TestTruncatedIndexRejected(t *testing.T) {
	path := buildStore(t, 10)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Claim more index entries than exist: bump the count field. The
	// index starts at indexOff; its first 4 bytes are the count.
	footStart := len(raw) - 8 - len([]byte("SLMDB1\n"))
	indexOff := int(uint64(raw[footStart]) | uint64(raw[footStart+1])<<8 |
		uint64(raw[footStart+2])<<16 | uint64(raw[footStart+3])<<24)
	raw[indexOff] = 200 // count = 200 > 10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("truncated index accepted")
	}
}

func TestLargeValuesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.slmdb")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	if err := w.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	val, err := r.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(val, big) {
		t.Error("1MB value corrupted")
	}
}
