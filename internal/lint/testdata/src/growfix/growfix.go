// Package growfix seeds mpi-pass violations around the elastic grow
// path for the golden fixture test: discarded and leaked join-handshake
// requests next to the well-behaved admit/catch-up shape.
package growfix

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/topology"
)

const ackTag = 9

func discardedAck(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	r.IjoinAck(c, ackTag, buf)            // want `mpi.IjoinAck result discarded`
	_ = r.IjoinAckRecv(c, 2, ackTag, buf) // want `mpi.IjoinAckRecv result discarded`
}

func leakedAckOnReturn(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer, admitted []int) {
	req := r.IjoinAck(c, ackTag, buf) // want `request from mpi.IjoinAck does not reach Wait/Test`
	if len(admitted) == 0 {
		return
	}
	_ = req
}

func leakedAckRecvAtScopeEnd(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer, admitted []int) {
	req := r.IjoinAckRecv(c, 1, ackTag, buf) // want `request from mpi.IjoinAckRecv does not reach Wait/Test`
	if len(admitted) > 1 {
		req = r.IjoinAck(c, ackTag, buf)
		r.Wait(req)
	}
}

func literalAckTag(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	req := r.IjoinAck(c, 61, buf) // want `literal tag passed to mpi.IjoinAck`
	r.Wait(req)
}

func wellBehavedCatchup(w *mpi.World, r *mpi.Rank, buf *gpu.Buffer, members, admitted []int) {
	grown := w.GrowComm(members)
	if grown.Rank(r) == 0 {
		for range admitted {
			r.Wait(r.IjoinAckRecv(grown, 1, ackTag, buf))
		}
	} else {
		r.Wait(r.IjoinAck(grown, ackTag, buf))
	}
	r.Bcast(grown, 0, buf, topology.ModeAuto)
}
