// Package sched executes one training iteration as a dependency graph
// of typed nodes on the simulator's cooperative kernel. Each design
// (SC-B, SC-OB, SC-OBR, and the baselines) becomes a graph-construction
// policy instead of a bespoke imperative loop: the nodes are the same
// compute and communication steps, and the edges encode exactly where
// communication is posted and waited relative to per-layer compute —
// the axis along which the paper's designs differ (Sections 4.1–4.3).
//
// A graph holds one or more lanes. Lane 0 runs inline on the rank's
// main proc; every additional lane becomes a simulated thread inside
// the rank (SC-OBR's backward helper). Within a lane, nodes run in
// insertion order; cross-lane edges (Node.After) and request gates
// (Node.Gated) add the explicit dependencies. Every node emits a trace
// span for its action and, separately, for any time it spent blocked on
// dependencies, so the timeline a graph produces is exactly the
// timeline the equivalent hand-written loop produced.
package sched

import (
	"fmt"

	"scaffe/internal/mpi"
	"scaffe/internal/sim"
)

// Kind classifies a node for tracing and diagnostics.
type Kind int

const (
	// Generic is control flow or zero-cost bookkeeping.
	Generic Kind = iota
	// DataWait blocks on the rank's data-reader queue.
	DataWait
	// Pack flattens parameters or gradients into a packed buffer.
	Pack
	// Unpack writes a packed buffer back into the model.
	Unpack
	// PostBcast posts non-blocking broadcasts (returns immediately).
	PostBcast
	// WaitBcast completes a broadcast the node's consumer needs.
	WaitBcast
	// ComputeForward runs one layer's forward kernel.
	ComputeForward
	// ComputeBackward runs one layer's backward kernel.
	ComputeBackward
	// Reduce runs a gradient reduction (per layer, bucket, or model).
	Reduce
	// DrainSends completes the root's outstanding broadcast sends.
	DrainSends
	// Update applies the solver update.
	Update
)

func (k Kind) String() string {
	switch k {
	case Generic:
		return "generic"
	case DataWait:
		return "data-wait"
	case Pack:
		return "pack"
	case Unpack:
		return "unpack"
	case PostBcast:
		return "post-bcast"
	case WaitBcast:
		return "wait-bcast"
	case ComputeForward:
		return "fwd"
	case ComputeBackward:
		return "bwd"
	case Reduce:
		return "reduce"
	case DrainSends:
		return "drain-sends"
	case Update:
		return "update"
	}
	return "unknown"
}

// Ctx is what a node's action receives: the rank the graph runs on,
// the proc executing this node (the rank's main proc for lane 0, the
// lane's own thread otherwise), and the iteration the graph is being
// executed for. Graphs are built once and executed per iteration, so
// anything iteration-dependent must come from It, not from values
// captured at construction time.
type Ctx struct {
	R  *mpi.Rank
	P  *sim.Proc
	It int
}

// Slot carries MPI requests from the node that creates them to the
// nodes gated on their completion. Requests exist only once the
// producing node has executed, so edges reference the slot, not the
// request.
type Slot struct {
	reqs []*mpi.Request
}

// NewSlot returns an empty slot.
func NewSlot() *Slot { return &Slot{} }

// Put appends a request; nil requests are ignored.
func (s *Slot) Put(req *mpi.Request) {
	if req != nil {
		//scaffe:nolint hotpath slots reset to [:0] each Execute; append reuses high-water capacity
		s.reqs = append(s.reqs, req)
	}
}

// Tracer receives one span per node execution: the action span under
// the node's phase, and a separate "<label>/wait" span for time spent
// blocked on dependencies or gates. Zero-length spans are not emitted.
type Tracer interface {
	NodeSpan(lane int, kind Kind, phase, label string, start, end sim.Time)
}

// Node is one step of the iteration graph.
type Node struct {
	g         *Graph
	kind      Kind
	label     string
	waitLabel string // label + "/wait", built lazily on first emission
	phase     string // phase charged for action time; "" = untraced
	waitPhase string // phase charged for dependency-wait time
	lane      int
	index     int
	action    func(*Ctx)
	deps      []*Node
	gates     []*Slot
	done      *sim.Completion
}

// After adds dependency edges. Same-lane edges to earlier nodes are
// implicit (lanes run in insertion order) and ignored; a same-lane edge
// to a later node would deadlock the lane and panics immediately.
func (n *Node) After(deps ...*Node) *Node {
	for _, d := range deps {
		if d == nil {
			continue
		}
		if d.lane == n.lane {
			if d.index >= n.index {
				panic(fmt.Sprintf("sched: node %q depends forward on %q within lane %d", n.label, d.label, n.lane))
			}
			continue
		}
		n.deps = append(n.deps, d)
	}
	return n
}

// Gated makes the node wait for every request in the slots before its
// action runs. Gates use Rank.Wait (which progresses CPU-deferred
// requests), so they are lane-0 only.
func (n *Node) Gated(slots ...*Slot) *Node {
	if n.lane != 0 {
		panic(fmt.Sprintf("sched: node %q gated on lane %d; request gates need the rank's main proc", n.label, n.lane))
	}
	n.gates = append(n.gates, slots...)
	n.g.slots = append(n.g.slots, slots...)
	return n
}

// WaitingIn charges the node's dependency-wait time to a different
// phase than its action (SC-OBR waits for a backward layer in
// "backward", then reduces in "aggregation").
func (n *Node) WaitingIn(phase string) *Node {
	n.waitPhase = phase
	return n
}

// Graph is one iteration's dependency graph for one rank. Building a
// graph is pure construction — it can be reused across iterations by
// calling Execute repeatedly with different iteration numbers.
type Graph struct {
	r         *mpi.Rank
	lanes     [][]*Node
	laneNames []string
	joins     []*sim.Completion // per-Execute scratch
	// slots lists every gated slot once per Gated registration, so
	// Execute's per-iteration reset touches only the slots instead of
	// walking every node.
	slots []*Slot
	// slab is the node arena: nodes are carved from fixed-size chunks
	// instead of allocated individually, so a built graph is a handful
	// of contiguous blocks — cheaper to allocate, cheaper for the
	// collector to scan, and laid out in execution order for the
	// per-iteration walk.
	slab []Node
}

// nodeSlab is the arena chunk size; chunks must never grow in place
// (returned *Node pointers are stable for the graph's lifetime).
const nodeSlab = 128

// New returns an empty graph for rank r with lane 0 (the rank's main
// proc) ready.
func New(r *mpi.Rank) *Graph {
	return &Graph{r: r, lanes: make([][]*Node, 1), laneNames: []string{"main"}}
}

// Lane allocates an additional lane, executed as a simulated thread
// inside the rank (mpi.Rank.SpawnThread), and returns its index.
func (g *Graph) Lane(name string) int {
	g.lanes = append(g.lanes, nil)
	g.laneNames = append(g.laneNames, name)
	return len(g.lanes) - 1
}

// Add appends a node to the lane. The action may be nil (a pure
// synchronization point). The wait phase defaults to the action phase;
// override with WaitingIn.
func (g *Graph) Add(lane int, kind Kind, phase, label string, action func(*Ctx)) *Node {
	if lane < 0 || lane >= len(g.lanes) {
		panic(fmt.Sprintf("sched: node %q on unknown lane %d", label, lane))
	}
	if len(g.slab) == cap(g.slab) {
		g.slab = make([]Node, 0, nodeSlab)
	}
	g.slab = append(g.slab, Node{
		g: g, kind: kind, label: label, phase: phase, waitPhase: phase,
		lane: lane, index: len(g.lanes[lane]), action: action,
	})
	n := &g.slab[len(g.slab)-1]
	g.lanes[lane] = append(g.lanes[lane], n)
	return n
}

// Execute runs the graph to completion on the rank's procs for
// iteration it: helper lanes are spawned as rank threads, lane 0 runs
// inline on the calling rank's main proc, and Execute returns only
// after every lane's last node has finished. tracer may be nil.
//
// A graph may be executed repeatedly (the engine caches one graph per
// rank and re-runs it every iteration): each Execute resets the gate
// slots, and — on multi-lane graphs — re-initializes the per-node
// completions, whose generation bump dissolves any reference left over
// from an abandoned (Revoked-unwound) previous execution. Single-lane
// graphs have no cross-lane edges and skip completions entirely.
func (g *Graph) Execute(tracer Tracer, it int) {
	k := g.r.W.K
	multiLane := len(g.lanes) > 1
	for _, s := range g.slots {
		s.reqs = s.reqs[:0]
	}
	if multiLane {
		for _, lane := range g.lanes {
			for _, n := range lane {
				if n.done == nil {
					n.done = k.NewCompletion()
				} else {
					n.done.Init(k)
				}
			}
		}
	}
	joins := g.joins[:0]
	for li := 1; li < len(g.lanes); li++ {
		nodes := g.lanes[li]
		if len(nodes) == 0 {
			continue
		}
		joins = append(joins, nodes[len(nodes)-1].done)
		g.r.SpawnThread(g.laneNames[li], func(p *sim.Proc) {
			// A revoked communicator unwinds helper lanes quietly:
			// recovery belongs to the main lane, which observes the
			// same revocation through its own waits.
			defer func() {
				if rec := recover(); rec != nil && !mpi.IsRevoked(rec) {
					panic(rec)
				}
			}()
			ctx := Ctx{R: g.r, P: p, It: it}
			for _, n := range nodes {
				g.runNode(n, &ctx, tracer)
			}
		})
	}
	g.joins = joins
	ctx := Ctx{R: g.r, P: g.r.Proc, It: it}
	for _, n := range g.lanes[0] {
		g.runNode(n, &ctx, tracer)
	}
	// Safety net: a well-formed graph orders lane 0 after its helpers
	// (SC-OBR's join node), making these waits free.
	for _, j := range joins {
		g.r.WaitDep(g.r.Proc, j)
	}
}

// runNode waits the node's dependencies and gates, runs its action,
// emits trace spans, and fires its completion. The untraced path skips
// all timestamp bookkeeping — it exists only to position spans.
//
// runNode is the steady-state iteration's root: every node action the
// engine registers (Graph.Add stores the callback into Node.action)
// runs under it once per iteration, so the hotpath obligation declared
// here propagates through the call graph into those closures and
// everything they reach.
//
//scaffe:hotpath
func (g *Graph) runNode(n *Node, ctx *Ctx, tracer Tracer) {
	p := ctx.P
	if tracer == nil {
		for _, d := range n.deps {
			// Lane-0 predecessors have almost always fired already;
			// checking inline skips two call frames per satisfied edge.
			if !d.done.Fired() {
				g.r.WaitDep(p, d.done)
			}
		}
		for _, s := range n.gates {
			for _, req := range s.reqs {
				g.r.Wait(req)
			}
		}
		if n.action != nil {
			n.action(ctx)
		}
		if n.done != nil {
			n.done.FireFrom(p)
		}
		return
	}
	start := p.Now()
	for _, d := range n.deps {
		if !d.done.Fired() {
			g.r.WaitDep(p, d.done)
		}
	}
	for _, s := range n.gates {
		for _, req := range s.reqs {
			g.r.Wait(req)
		}
	}
	if waited := p.Now(); waited > start && n.waitPhase != "" {
		// The shared trace sink is outside every group: a batched
		// segment serializes before emitting.
		p.Exclusive()
		if n.waitLabel == "" {
			//scaffe:nolint hotpath built once per node on the first traced wait, then cached
			n.waitLabel = n.label + "/wait"
		}
		tracer.NodeSpan(n.lane, n.kind, n.waitPhase, n.waitLabel, start, waited)
	}
	at := p.Now()
	if n.action != nil {
		n.action(ctx)
	}
	if end := p.Now(); end > at && n.phase != "" {
		p.Exclusive()
		tracer.NodeSpan(n.lane, n.kind, n.phase, n.label, at, end)
	}
	if n.done != nil {
		n.done.FireFrom(p)
	}
}
