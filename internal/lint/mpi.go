package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The mpi pass enforces five pieces of request discipline:
//
//  1. lifecycle — every non-blocking call (Isend, Irecv, Ibcast,
//     Ireduce, NewDeferredRequest) returns a *Request that must reach a
//     Wait/Test (any later use counts) on every path; discarding the
//     result or letting the variable die unexamined leaks the request
//     and, under ULFM-style revocation, strands the completion;
//  2. integrity — a checksummed receive (RecvSummed) must reach its
//     Verify on every path; a path that skips Verify silently accepts
//     corrupted payloads, defeating the whole integrity plane;
//  3. tags — message tags must be named constants (or expressions over
//     them), never bare integer literals: two call sites inventing the
//     same literal tag cross their matches silently;
//  4. helper threads — closures handed to SpawnThread model the
//     communication helper thread; issuing a blocking collective from
//     one deadlocks the rank the moment the main thread enters the
//     same collective.
//  5. kernel context — RunEvent bodies (sim.Runnable hooks, where the
//     delivery-perturbation plane runs) and closures handed to
//     Kernel.At execute inside the event kernel, where no rank loop
//     exists to Wait a request; constructing one there is structurally
//     a leak, even if the result is stored. A wire-fault hook must
//     reschedule or re-land traffic, never post new requests.

func runMPI(_ *Program, pkg *Pkg, report func(pos token.Pos, msg string)) {
	runFlow(pkg, flowSpec{
		creator: requestCreator,
		discardMsg: func(c string) string {
			return fmt.Sprintf("%s result discarded: the request never reaches Wait/Test and leaks", c)
		},
		leakMsg: func(c string) string {
			return fmt.Sprintf("request from %s does not reach Wait/Test on every path", c)
		},
	}, report)

	runFlow(pkg, flowSpec{
		creator: summedCreator,
		discardMsg: func(c string) string {
			return fmt.Sprintf("%s result discarded: the checksummed payload never reaches Verify and corruption passes silently", c)
		},
		leakMsg: func(c string) string {
			return fmt.Sprintf("checksummed receive from %s does not reach Verify on every path", c)
		},
	}, report)

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTagArgs(pkg, n, report)
				checkHelperThread(pkg, n, report)
				checkKernelCallback(pkg, n, report)
			case *ast.FuncDecl:
				checkRunEvent(pkg, n, report)
			}
			return true
		})
	}
}

// requestCreator names non-blocking request constructors.
func requestCreator(pkg *Pkg, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	switch {
	case funcFrom(fn, "scaffe/internal/mpi", "Isend", "Irecv", "Ibcast", "NewDeferredRequest", "IjoinAck", "IjoinAckRecv"):
		return "mpi." + fn.Name()
	case funcFrom(fn, "scaffe/internal/coll", "Ireduce"):
		return "coll.Ireduce"
	}
	return ""
}

// summedCreator names the checksummed-receive constructor.
func summedCreator(pkg *Pkg, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if funcFrom(fn, "scaffe/internal/mpi", "RecvSummed") {
		return "mpi." + fn.Name()
	}
	return ""
}

// checkTagArgs flags bare integer literals passed to a parameter named
// "tag" of an mpi or coll function.
func checkTagArgs(pkg *Pkg, call *ast.CallExpr, report func(pos token.Pos, msg string)) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if p := fn.Pkg().Path(); p != "scaffe/internal/mpi" && p != "scaffe/internal/coll" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		if params.At(i).Name() != "tag" {
			continue
		}
		if isIntLiteral(arg) {
			report(arg.Pos(), fmt.Sprintf(
				"literal tag passed to %s.%s; use a named constant so call sites cannot collide", fn.Pkg().Name(), fn.Name()))
		}
	}
}

// isIntLiteral reports whether expr is a bare integer literal,
// possibly parenthesized or signed.
func isIntLiteral(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return isIntLiteral(e.X)
		}
	}
	return false
}

// checkRunEvent flags request construction inside a RunEvent method —
// the sim.Runnable hook that executes in kernel context, where the
// delivery-perturbation plane (mpi/wire.go) lives. There is no rank
// loop in kernel context to Wait the request, so anything posted there
// is unwaited no matter where the result lands; the hook must confine
// itself to rescheduling and re-landing the traffic it intercepts.
// Nested function literals are skipped: a closure built here runs in
// whatever context it is later invoked from, and the ones handed back
// to the kernel are covered by checkKernelCallback.
func checkRunEvent(pkg *Pkg, fn *ast.FuncDecl, report func(pos token.Pos, msg string)) {
	if fn.Recv == nil || fn.Name.Name != "RunEvent" || fn.Body == nil {
		return
	}
	reportCreators(pkg, fn.Body, report, func(c string) string {
		return fmt.Sprintf("%s inside a RunEvent kernel hook: kernel context has no rank to Wait the request — a delivery-perturbation hook must reschedule or re-land traffic, never post new requests", c)
	})
}

// checkKernelCallback flags request construction inside a function
// literal handed to sim Kernel.At. The literal fires in kernel context
// at its scheduled instant (the reorder-stash failsafe in mpi/wire.go
// is the canonical user), with the same no-one-can-Wait problem as a
// RunEvent body.
func checkKernelCallback(pkg *Pkg, call *ast.CallExpr, report func(pos token.Pos, msg string)) {
	if !funcFrom(calleeFunc(pkg, call), "scaffe/internal/sim", "At") {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		reportCreators(pkg, lit.Body, report, func(c string) string {
			return fmt.Sprintf("%s inside a Kernel.At callback: kernel context has no rank to Wait the request — reschedule the delivery instead of posting new requests", c)
		})
	}
}

// reportCreators reports every request-constructor call lexically
// inside body, without descending into nested function literals.
func reportCreators(pkg *Pkg, body *ast.BlockStmt, report func(pos token.Pos, msg string), msg func(creator string) string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c := requestCreator(pkg, call); c != "" {
			report(call.Pos(), msg(c))
		}
		return true
	})
}

// checkHelperThread flags blocking collectives inside a closure passed
// to mpi SpawnThread.
func checkHelperThread(pkg *Pkg, call *ast.CallExpr, report func(pos token.Pos, msg string)) {
	fn := calleeFunc(pkg, call)
	if !funcFrom(fn, "scaffe/internal/mpi", "SpawnThread") {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ifn := calleeFunc(pkg, inner)
			switch {
			case funcFrom(ifn, "scaffe/internal/mpi", "Bcast"):
				report(inner.Pos(), "blocking mpi.Bcast inside a SpawnThread helper; it deadlocks against the main thread's collectives — use Ibcast")
			case funcFrom(ifn, "scaffe/internal/coll", "Reduce", "Allreduce", "RingAllreduce", "ReduceScatterGather", "BcastScatterAllgather"):
				report(inner.Pos(), fmt.Sprintf(
					"blocking collective coll.%s inside a SpawnThread helper; it deadlocks against the main thread's collectives — use coll.Ireduce", ifn.Name()))
			}
			return true
		})
	}
}
