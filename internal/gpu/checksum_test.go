package gpu

import (
	"math"
	"testing"
)

func TestChecksumIncrementalMatchesRegion(t *testing.T) {
	b := NewDataBuffer(64)
	for i := range b.Data {
		b.Data[i] = float32(i)*0.25 - 3
	}
	h := ChecksumSeed()
	for _, v := range b.Data {
		h = ChecksumWord(h, math.Float32bits(v))
	}
	if got := b.Checksum(); got != h {
		t.Fatalf("Checksum = %#x, incremental fold = %#x", got, h)
	}
	// A split region fold continues from the prefix's state.
	mid := ChecksumSeed()
	for _, v := range b.Data[:20] {
		mid = ChecksumWord(mid, math.Float32bits(v))
	}
	for _, v := range b.Data[20:] {
		mid = ChecksumWord(mid, math.Float32bits(v))
	}
	if mid != h {
		t.Fatalf("split fold = %#x, want %#x", mid, h)
	}
}

func TestChecksumDetectsSingleBitFlips(t *testing.T) {
	b := NewDataBuffer(16)
	for i := range b.Data {
		b.Data[i] = float32(i) + 0.5
	}
	want := b.Checksum()
	for i := range b.Data {
		for bit := 0; bit < 32; bit++ {
			orig := b.Data[i]
			b.Data[i] = math.Float32frombits(math.Float32bits(orig) ^ (1 << uint(bit)))
			if b.Checksum() == want {
				t.Fatalf("flip of bit %d in word %d undetected", bit, i)
			}
			b.Data[i] = orig
		}
	}
	if b.Checksum() != want {
		t.Fatal("restore left the buffer changed")
	}
}

func TestChecksumPayloadFreeBufferIsSeed(t *testing.T) {
	b := NewBuffer(1 << 20) // timing-mode buffer: bytes, no values
	if got := b.Checksum(); got != ChecksumSeed() {
		t.Fatalf("payload-free checksum = %#x, want seed %#x", got, ChecksumSeed())
	}
	if got := NewDataBuffer(0).Checksum(); got != ChecksumSeed() {
		t.Fatalf("empty checksum = %#x, want seed %#x", got, ChecksumSeed())
	}
}

func TestRegionChecksumComposesWithSlice(t *testing.T) {
	b := NewDataBuffer(32)
	for i := range b.Data {
		b.Data[i] = float32(i) * 1.5
	}
	if got, want := b.RegionChecksum(8, 24), b.Slice(8, 24).Checksum(); got != want {
		t.Fatalf("RegionChecksum(8,24) = %#x, Slice(8,24).Checksum() = %#x", got, want)
	}
}
