#!/bin/sh
# check.sh — the repository's pre-merge gate: formatting, vet,
# scaffe-lint, build, and the full test suite under the race detector.
# Run from anywhere; it always operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== scaffe-lint =="
# The repo-specific static gate (determinism, hot-path allocation, MPI
# request discipline, trace-span balance); cheap, so it runs before the
# race-instrumented test phase. See internal/lint and DESIGN.md §10.
go run ./cmd/scaffe-lint ./...

echo "== scaffe-lint -escape =="
# The compiler-verified escape gate (DESIGN.md §15): go build
# -gcflags=-m=1 over the propagated-hotpath packages, diffed against
# the checked-in lint.baseline. A new heap escape in a hot function —
# or a stale baseline entry — fails here, with the annotated root
# named; regenerate the file with
#   go run ./cmd/scaffe-lint -escape -write-baseline
# after auditing the diff. Unrecognized compiler output fails loudly
# rather than silently disabling the gate.
go run ./cmd/scaffe-lint -escape ./...

echo "== go build =="
go build ./...

echo "== event-kernel zero-alloc gate =="
# The pooled event kernel must not allocate in steady state (DESIGN.md
# §12) — in either mode: the sequential daisy-chain and the sharded
# parallel-lookahead batches (DESIGN.md §13) are gated separately. Run
# un-instrumented first, since race instrumentation itself allocates
# and would mask a regression.
go test -run '^TestSimKernelZeroAllocSteadyState$|^TestSimKernelParallelZeroAllocSteadyState$' -count=1 ./internal/sim

echo "== parallel-kernel race gate =="
# The sharded kernel's speculative segments only run concurrently when
# batches form, and the host may have too few cores for the engine's
# auto policy to arm them — so run the sim and mpi parallel suites
# race-instrumented with batching forced explicitly. These tests pin
# bit-identity against the sequential kernel while the race detector
# watches the speculation, staging, and commit paths.
go test -race -run 'Parallel' -count=1 ./internal/sim ./internal/mpi

echo "== elastic churn drill =="
# The elastic membership acceptance bar (DESIGN.md §14): the 32-rank
# crash→recover→join run must produce an identical fault report and
# total time at every GOMAXPROCS, and the catch-up replay must be
# bit-exact against a golden run. Race-instrumented so the detector
# watches the join desk and catch-up collectives under real
# parallelism.
for procs in 1 4 16; do
    GOMAXPROCS=$procs go test -race -timeout 20m \
        -run '^TestGoogLeNet32CrashRecoverJoinDeterministic$|^TestRealJoinAfterCrashBitExact$|^TestJoinUnderFire$' \
        -count=1 ./internal/core
done

echo "== chaos smoke =="
# The seeded chaos plane (DESIGN.md §16): 25 randomized fault
# schedules — crash/hang/straggle/join plus the lossy-wire family —
# must terminate finished-or-unrecovered with schedule-consistent
# counters at every GOMAXPROCS, race-instrumented so the detector
# watches the wire perturbation hooks and the quorum/fencing paths.
# The full 200-spec gate (TestChaosGate) runs in the suite below.
for procs in 1 4 16; do
    GOMAXPROCS=$procs go test -race -run '^TestChaosSmoke$' \
        -count=1 ./internal/chaos
done

echo "== go test -race =="
# Race instrumentation slows the simulator ~10x; the core package needs
# more than the default 10-minute per-package budget.
go test -race -timeout 45m ./...

echo "== fuzz smoke =="
# A few seconds per target keeps the parsers honest without turning the
# gate into a fuzzing campaign; run longer sessions by hand with
# -fuzztime as needed.
go test -run '^$' -fuzz FuzzSnapshotDecode -fuzztime 5s ./internal/core
go test -run '^$' -fuzz FuzzParse -fuzztime 5s ./internal/proto
go test -run '^$' -fuzz FuzzChunkChecksum -fuzztime 5s ./internal/mpi
go test -run '^$' -fuzz FuzzParseSchedule -fuzztime 5s ./internal/fault

echo "== OK =="
