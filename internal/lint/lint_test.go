package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness: fixture sources under testdata/src carry
//
//	// want `regex`
//
// comments; each expects one diagnostic on the comment's line whose
// "[pass] message" rendering matches the regex. A suffix offset
// (want-1, want+2) shifts the expected line relative to the comment —
// used where the diagnostic lands on a directive line that cannot hold
// a second comment. Every diagnostic must be expected and every
// expectation must fire.

var (
	wantRe  = regexp.MustCompile("want([+-][0-9]+)?((?:\\s+`[^`]*`)+)")
	backqRe = regexp.MustCompile("`[^`]*`")
)

type wantExpect struct {
	file string // base name
	line int
	re   *regexp.Regexp
	used bool
}

func parseWants(t *testing.T, dir string) []*wantExpect {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantExpect
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				offset := 0
				if m[1] != "" {
					sign := 1
					if m[1][0] == '-' {
						sign = -1
					}
					for _, c := range m[1][1:] {
						offset = offset*10 + int(c-'0')
					}
					offset *= sign
				}
				for _, q := range backqRe.FindAllString(m[2], -1) {
					re, err := regexp.Compile(q[1 : len(q)-1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %s: %v", e.Name(), i+1, q, err)
					}
					wants = append(wants, &wantExpect{file: e.Name(), line: i + 1 + offset, re: re})
				}
			}
		}
	}
	return wants
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestGoldenFixtures(t *testing.T) {
	root := moduleRoot(t)
	for _, fixture := range []string{"determ", "hotfix", "simhotfix", "mpifix", "tracefix", "nolintfix", "sdcfix", "simparfix", "growfix", "xprofix", "exclfix", "chaosfix"} {
		t.Run(fixture, func(t *testing.T) {
			rel := "internal/lint/testdata/src/" + fixture
			diags, err := Analyze(root, []string{"./" + rel})
			if err != nil {
				t.Fatal(err)
			}
			wants := parseWants(t, filepath.Join(root, filepath.FromSlash(rel)))
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want expectations", fixture)
			}
			for _, d := range diags {
				rendered := "[" + d.Pass + "] " + d.Message
				matched := false
				for _, w := range wants {
					if !w.used && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(rendered) {
						w.used = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.used {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestEachPassFires asserts the acceptance floor directly: every pass
// produces at least two diagnostics across the fixture set, so the
// fixtures keep proving each pass can fire.
func TestEachPassFires(t *testing.T) {
	diags, err := Analyze(moduleRoot(t), []string{"./internal/lint/testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Pass]++
	}
	for _, pass := range Passes() {
		if counts[pass.Name] < 2 {
			t.Errorf("pass %s fired %d time(s) across fixtures, want >= 2", pass.Name, counts[pass.Name])
		}
	}
	if counts["nolint"] < 2 {
		t.Errorf("nolint policing fired %d time(s), want >= 2", counts["nolint"])
	}
}

// TestRepoIsClean is the self-check the CI gate relies on: the
// analyzer over the real tree (testdata excluded by the loader) must
// report nothing.
func TestRepoIsClean(t *testing.T) {
	diags, err := Analyze(moduleRoot(t), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}
