package core

import (
	"fmt"
	"math"

	"scaffe/internal/coll"
	"scaffe/internal/data"
	"scaffe/internal/fault"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
)

// This file is the engine's side of elastic fault tolerance: the
// fault plane (internal/fault) injects failures and detects them
// through the MPI layer's deadline-sliced waits; the code here turns
// a detected failure into a continued run — survivors shrink the
// communicator, re-shard the batch, restore solver state from the
// latest snapshot (real mode) or the last globally completed
// iteration (timing mode), and keep training.

// applier carries out injected events on the engine's objects.
type applier struct{ st *runState }

// KillRank implements fault.Applier: fail-stop the rank's procs and
// its data reader. Hangs are modeled fail-stop too — the rank stops
// participating; only the report distinguishes the kinds.
func (a *applier) KillRank(rank int, kind fault.Kind) {
	st := a.st
	st.world.Ranks[rank].KillAll()
	if rd := st.readers[rank]; rd != nil {
		rd.Stop()
		st.readers[rank] = nil
	}
}

// SetCompute implements fault.Applier: straggler on/off.
func (a *applier) SetCompute(rank int, factor float64) {
	a.st.world.Ranks[rank].Dev.SetSlowdown(factor)
}

// FlipBit implements fault.BitFlipper: flip one bit of one resident
// network parameter — silent in-memory corruption that no checksum on
// the wire can see, only the numeric-health watchdog. The word index
// wraps, so schedules stay valid across models.
func (a *applier) FlipBit(rank, word, bit int) {
	w := a.st.wl[rank]
	if w == nil || !w.real() {
		return
	}
	total := 0
	for _, l := range w.net.Layers {
		for _, p := range l.Params() {
			total += len(p.Data)
		}
	}
	if total == 0 {
		return
	}
	idx := word % total
	for _, l := range w.net.Layers {
		for _, p := range l.Params() {
			if idx < len(p.Data) {
				p.Data[idx] = math.Float32frombits(math.Float32bits(p.Data[idx]) ^ 1<<uint(bit))
				return
			}
			idx -= len(p.Data)
		}
	}
}

// stalledSource wraps a rank's data source with the plane's
// reader-stall windows: a read issued during a stall waits the window
// out, then proceeds at the backend's normal cost.
type stalledSource struct {
	inner data.Source
	pl    *fault.Plane
	rank  int
}

func (s stalledSource) Name() string { return s.inner.Name() }

func (s stalledSource) ReadBatch(p *sim.Proc, n int, bytesPer int64) {
	if until := s.pl.StallUntil(s.rank); until > p.Now() {
		p.WaitUntil(until)
	}
	s.inner.ReadBatch(p, n, bytesPer)
}

// noteCompleted records global training progress (root's post-update
// node): the restart point for timing-mode recovery, which has no
// snapshots to roll back to.
func (st *runState) noteCompleted(it int) {
	if st.ft != nil && it > st.lastGoodIter {
		st.lastGoodIter = it
	}
}

// runRankFT is one rank's training loop under an armed fault plane:
// iterations run speculatively; a revoked communicator unwinds the
// iteration, gathers the survivors, and resumes from the rebuilt
// world's restart point.
func (st *runState) runRankFT(r *mpi.Rank, sink *nodeSink) {
	defer st.rankDone(r.ID)
	cfg := st.cfg
	for it := cfg.StartIteration; it < cfg.Iterations; {
		if st.tryIteration(r, sink, it) {
			it++
			continue
		}
		// Revocation observed: rendezvous with every surviving rank.
		// The last arrival triggers rebuild() and releases everyone;
		// training resumes from the restart point it chose.
		st.ft.EnterRecovery(r.ID, r.Proc)
		it = st.restartIter
	}
}

// tryIteration runs one iteration graph, converting a revocation
// panic into a false return. Any other panic (including a kill, which
// must unwind the whole proc) propagates.
func (st *runState) tryIteration(r *mpi.Rank, sink *nodeSink, it int) (ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			if mpi.IsRevoked(rec) {
				ok = false
				return
			}
			panic(rec)
		}
	}()
	st.buildIteration(r).Execute(sink, it)
	return true
}

// rankDone runs as each rank's proc unwinds (normal completion or
// kill): it tells the plane the rank left training, and the last one
// out stamps the run's end time and stops the elastic readers.
func (st *runState) rankDone(rank int) {
	st.ranksLive--
	st.ft.Depart(rank)
	if st.ranksLive == 0 {
		st.doneAt = st.k.Now()
		for _, rd := range st.readers {
			if rd != nil {
				rd.Stop()
			}
		}
	}
}

// rebuild is the plane's recovery hook, run exactly once per round
// with every survivor parked: shrink the communicator to the
// survivors, rebuild their training state at the new batch geometry,
// restore solver state, restart the data plane, and return the
// iteration training resumes from.
func (st *runState) rebuild() int {
	cfg := st.cfg
	pl := st.ft

	// A watchdog trip revokes with zero failed ranks and takes the
	// micro-rollback path — unless a real failure landed in the same
	// round, in which case the full rebuild below handles both.
	micro := st.integRetry
	st.integRetry = false
	if micro && len(pl.Report().Recoveries) == st.recSeen {
		return st.rebuildMicro()
	}

	alive := pl.AliveRanks()

	// Fail-stop any helper lanes still unwinding from the revoked
	// iteration; the resumed main lanes spawn fresh ones.
	for _, id := range alive {
		st.world.Ranks[id].KillThreads()
	}

	// Shrink: a fresh communicator over the survivors. Its new id
	// guarantees stale traffic from the failed epoch never matches.
	st.comm = st.world.ShrinkComm(alive)
	opts := cfg.ReduceOpts
	if opts == (coll.Options{}) {
		opts = coll.DefaultOptions()
	}
	st.red = coll.NewReducer(st.comm, cfg.Reduce, opts)

	// Re-shard: the global batch redistributes over the survivors.
	newLocal := cfg.localBatch(len(alive))
	for _, id := range alive {
		w := newWorkload(cfg, newLocal)
		if cfg.BucketBytes > 0 && (cfg.Design == SCOBR || cfg.Design == SCOBRF) {
			w.buildBuckets(cfg.Spec, cfg.BucketBytes)
		}
		st.wl[id] = w
	}

	// Restore. Real mode rolls back to the latest on-disk snapshot
	// (or a cold restart when none exists yet); timing mode continues
	// after the last globally completed iteration — there is no model
	// state to make consistent.
	restart := 0
	rolledBack := false
	if cfg.RealNet != nil {
		var snap *Snapshot
		if n := len(st.snapshots); n > 0 {
			s, err := ReadSnapshot(st.snapshots[n-1])
			if err != nil && st.fileErr == nil {
				st.fileErr = err
			}
			snap = s
		}
		if snap != nil {
			restart = snap.Iteration + 1
			rolledBack = true
			for _, id := range alive {
				st.wl[id].net.UnpackParams(snap.Params)
				st.sgds[id].Reset()
				if len(snap.History) > 0 {
					st.sgds[id].LoadHistory(st.wl[id].net, snap.History)
				}
			}
		} else {
			// Cold restart: newWorkload already rebuilt every net from
			// the seed; drop the momentum to match, and re-apply an
			// explicit resume checkpoint if the run started from one.
			restart = cfg.StartIteration
			for _, id := range alive {
				st.sgds[id].Reset()
			}
			if cfg.ResumeFrom != "" {
				if err := st.resume(cfg.ResumeFrom); err != nil && st.fileErr == nil {
					st.fileErr = err
				}
			}
		}
		// Un-record the rolled-back span: the replay re-records it.
		if keep := restart - cfg.StartIteration; keep >= 0 && keep < len(st.losses) {
			st.losses = st.losses[:keep]
		}
		if ti := cfg.TestInterval; ti > 0 {
			if keep := restart/ti - cfg.StartIteration/ti; keep >= 0 && keep < len(st.accuracies) {
				st.accuracies = st.accuracies[:keep]
			}
		}
	} else {
		restart = st.lastGoodIter + 1
	}

	// Restart the surviving data plane at the new batch size.
	st.epoch++
	for _, id := range alive {
		if rd := st.readers[id]; rd != nil {
			rd.Stop()
		}
		st.readers[id] = data.StartReaderLoop(st.k, fmt.Sprintf("reader%d.e%d", id, st.epoch),
			stalledSource{inner: st.dataSrc, pl: pl, rank: id}, newLocal, cfg.Spec.PerSampleBytes, cfg.QueueDepth)
	}

	// Observability: stamp the rollback flag on this round's records
	// and emit one recovery span per survivor.
	recs := pl.Report().Recoveries
	if n := len(recs); n > st.recSeen {
		if rolledBack {
			pl.NoteRollback(n - st.recSeen)
		}
		detect := recs[st.recSeen].DetectedAt
		for i := st.recSeen + 1; i < n; i++ {
			if recs[i].DetectedAt < detect {
				detect = recs[i].DetectedAt
			}
		}
		for _, id := range alive {
			st.cfg.Trace.Add(id, "recovery", detect, st.k.Now())
		}
		st.recSeen = n
	}

	st.restartIter = restart
	return restart
}
