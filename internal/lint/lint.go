// Package lint implements scaffe-lint, the repository's static
// analyzer. It enforces at compile time the invariants the runtime
// test suite can only catch after the fact:
//
//   - determinism: the simulator-facing packages must not consult wall
//     clocks or global randomness, and must not feed unordered map
//     iteration into ordered outputs (trace spans, wire sends); code
//     annotated `//scaffe:parallel` (speculative batch segments) must
//     not touch package-level variables or non-mailbox channels.
//   - hotpath: functions annotated `//scaffe:hotpath` must stay
//     allocation-free (no composite-literal/make/new allocation, no
//     append growth, no fmt, no closures, no interface boxing).
//   - mpi: every non-blocking request must reach a Wait/Test on every
//     return path, tags must be named constants, helper-thread
//     closures must not issue blocking MPI calls, and kernel-context
//     code (RunEvent hooks, Kernel.At callbacks — where the
//     delivery-perturbation plane runs) must not construct requests
//     at all.
//   - trace: a span opened with Recorder.Begin must be ended on every
//     return path.
//   - exclusive: code holding a parallel obligation must route
//     kernel-visible effects (Kernel scheduling sinks, Completion
//     firing) through the parSegment staging API unless it is in
//     serial context, and segment state may only be mutated by the
//     staging machinery itself.
//
// Since PR 9 the hotpath, parallel, and exclusive obligations are
// interprocedural (DESIGN.md §15): Analyze builds a module-wide call
// graph and floods each annotation over it, so a diagnostic fires in
// an unannotated callee with the annotated root named in the message.
//
// The analyzer is pure stdlib (go/parser + go/types with a
// module-aware source importer), so it runs offline with no
// third-party dependencies.
//
// Annotation grammar:
//
//	//scaffe:hotpath
//	    On a function's doc comment: the function body — and
//	    everything it may reach through the call graph — is subject to
//	    the hotpath allocation rules.
//
//	//scaffe:parallel
//	    On a function's doc comment: the function runs inside the
//	    speculative part of a parallel-lookahead batch; it and its
//	    non-stage-guarded callees are subject to the determinism
//	    pass's shared-state rules and the exclusive pass's staging
//	    discipline.
//
//	//scaffe:coldpath <reason>
//	    In a function's doc comment: the function is a declared slow
//	    path; propagated obligations stop at its boundary. On its own
//	    line inside a body: the calls on that line and the next are a
//	    deliberate slow-path departure. The reason is mandatory.
//
//	//scaffe:nolint <pass> <reason>
//	    On (or immediately above) the offending line: suppresses that
//	    pass's diagnostics for the line. The reason is mandatory and
//	    enforced by the linter itself.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, printable as "file:line:col: [pass] msg".
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// Pass is one analysis over a type-checked package.
type Pass struct {
	// Name tags diagnostics and is the key of //scaffe:nolint.
	Name string
	// Doc is a one-line description (for -help and DESIGN.md).
	Doc string
	// Applies restricts the pass to certain import paths; nil means
	// every analyzed package.
	Applies func(pkgPath string) bool
	// Run reports findings for one package via report (positions
	// inside pkg.Fset); prog carries the module-wide call graph and
	// the propagated obligation sets.
	Run func(prog *Program, pkg *Pkg, report func(token.Pos, string))
}

// deterministicScope lists the import-path prefixes whose determinism
// the repo's golden tests pin bit-exactly; the determinism pass applies
// only there (plus lint fixtures, which exercise every pass).
var deterministicScope = []string{
	"scaffe/internal/sim",
	"scaffe/internal/core",
	"scaffe/internal/sched",
	"scaffe/internal/coll",
	"scaffe/internal/mpi",
}

func inDeterministicScope(path string) bool {
	for _, p := range deterministicScope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return strings.Contains(path, "lint/testdata")
}

// Passes returns the full pass list in reporting order.
func Passes() []*Pass {
	return []*Pass{
		{
			Name:    "determinism",
			Doc:     "no wall clocks, global math/rand, map-order-dependent ordered outputs, or shared state in //scaffe:parallel sections",
			Applies: inDeterministicScope,
			Run:     runDeterminism,
		},
		{
			Name: "hotpath",
			Doc:  "//scaffe:hotpath functions must not allocate (composite lits, append, make/new, fmt, closures, boxing)",
			Run:  runHotpath,
		},
		{
			Name: "mpi",
			Doc:  "requests reach Wait/Test on all paths, tags are named constants, helpers issue no blocking MPI, kernel-context hooks (RunEvent, Kernel.At) post no requests",
			Run:  runMPI,
		},
		{
			Name: "trace",
			Doc:  "spans opened by Begin are ended on all return paths",
			Run:  runTrace,
		},
		{
			Name:    "exclusive",
			Doc:     "parallel-reachable code stages kernel effects through parSegment; segment state mutates only via the staging API",
			Applies: inDeterministicScope,
			Run:     runExclusive,
		},
	}
}

// passNames is the set accepted by //scaffe:nolint.
func passNames() map[string]bool {
	m := map[string]bool{"all": true}
	for _, p := range Passes() {
		m[p.Name] = true
	}
	return m
}

// Analyze loads the packages matched by patterns under moduleDir
// (through the process-wide shared loader, so repeated invocations
// reuse the type-checked load), builds the interprocedural Program
// over them, runs every applicable pass, applies //scaffe:nolint
// suppressions, and returns the surviving diagnostics sorted by
// position.
func Analyze(moduleDir string, patterns []string) ([]Diagnostic, error) {
	prog, err := LoadProgram(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		diags = append(diags, analyzePackage(prog, pkg)...)
	}
	for _, h := range prog.hygiene {
		diags = append(diags, Diagnostic{Pos: h.pkg.Fset.Position(h.pos), Pass: "nolint", Message: h.msg})
	}
	sortDiagnostics(diags)
	return diags, nil
}

// LoadProgram loads the matched packages and builds the call graph and
// propagated obligation sets over them.
func LoadProgram(moduleDir string, patterns []string) (*Program, error) {
	loader, err := SharedLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	return NewProgram(pkgs), nil
}

// analyzePackage runs every applicable pass over one loaded package
// and post-processes nolint suppressions.
func analyzePackage(prog *Program, pkg *Pkg) []Diagnostic {
	var diags []Diagnostic
	for _, pass := range Passes() {
		if pass.Applies != nil && !pass.Applies(pkg.Path) {
			continue
		}
		p := pass
		p.Run(prog, pkg, func(pos token.Pos, msg string) {
			diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(pos), Pass: p.Name, Message: msg})
		})
	}
	return applyNolint(pkg, diags)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
}

// --- //scaffe:nolint -------------------------------------------------------

const nolintPrefix = "//scaffe:nolint"

var nolintRe = regexp.MustCompile(`^//scaffe:nolint(?:\s+(\S+))?(?:\s+(.*\S))?\s*$`)

// nolintDirective is one parsed suppression comment.
type nolintDirective struct {
	pass   string
	reason string
	line   int
	pos    token.Pos
}

// nolintDirectives extracts every //scaffe:nolint comment of a file.
func nolintDirectives(fset *token.FileSet, f *ast.File) []nolintDirective {
	var ds []nolintDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, nolintPrefix) {
				continue
			}
			m := nolintRe.FindStringSubmatch(c.Text)
			d := nolintDirective{line: fset.Position(c.Pos()).Line, pos: c.Pos()}
			if m != nil {
				d.pass, d.reason = m[1], m[2]
			}
			ds = append(ds, d)
		}
	}
	return ds
}

// applyNolint removes diagnostics suppressed by a well-formed nolint
// directive on the same or preceding line and adds diagnostics for
// malformed directives (the reason is mandatory).
func applyNolint(pkg *Pkg, diags []Diagnostic) []Diagnostic {
	known := passNames()
	// byFileLine[file][line] -> passes suppressed there.
	byFileLine := make(map[string]map[int]map[string]bool)
	var out []Diagnostic
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		for _, d := range nolintDirectives(pkg.Fset, f) {
			switch {
			case d.pass == "":
				out = append(out, Diagnostic{
					Pos: pkg.Fset.Position(d.pos), Pass: "nolint",
					Message: "malformed //scaffe:nolint: want \"//scaffe:nolint <pass> <reason>\"",
				})
				continue
			case !known[d.pass]:
				out = append(out, Diagnostic{
					Pos: pkg.Fset.Position(d.pos), Pass: "nolint",
					Message: fmt.Sprintf("//scaffe:nolint names unknown pass %q", d.pass),
				})
				continue
			case d.reason == "":
				out = append(out, Diagnostic{
					Pos: pkg.Fset.Position(d.pos), Pass: "nolint",
					Message: fmt.Sprintf("//scaffe:nolint %s needs a non-empty reason", d.pass),
				})
				continue
			}
			lines := byFileLine[fname]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				byFileLine[fname] = lines
			}
			// A directive covers its own line and the next one, so it
			// can sit on the offending line or on its own line above.
			for _, ln := range []int{d.line, d.line + 1} {
				if lines[ln] == nil {
					lines[ln] = make(map[string]bool)
				}
				lines[ln][d.pass] = true
			}
		}
	}
	for _, d := range diags {
		if lines := byFileLine[d.Pos.Filename]; lines != nil {
			if sup := lines[d.Pos.Line]; sup != nil && (sup[d.Pass] || sup["all"]) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// --- //scaffe:hotpath ------------------------------------------------------

const hotpathDirective = "//scaffe:hotpath"

// isHotpath reports whether a function declaration carries the
// //scaffe:hotpath annotation in its doc comment.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if text := strings.TrimSpace(c.Text); text == hotpathDirective ||
			strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}
