// Command experiments regenerates the paper's evaluation tables and
// figures from the simulator.
//
// Usage:
//
//	experiments [-run id] [-iters n] [-maxgpus n] [-o file]
//
// With no -run flag it executes every experiment in order and writes a
// combined markdown report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scaffe/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "experiment id (table1, figure8..figure13, table2, scobr, costmodel); empty = all")
	iters := flag.Int("iters", 0, "override training iterations per run (0 = experiment defaults)")
	maxGPUs := flag.Int("maxgpus", 0, "cap the GPU sweep (0 = paper scale, 160)")
	out := flag.String("o", "", "write the markdown report to this file as well as stdout")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Desc)
		}
		return
	}

	opts := experiments.Options{Iterations: *iters, MaxGPUs: *maxGPUs}
	var runners []experiments.Runner
	if *runID == "" {
		runners = experiments.All()
	} else {
		r, err := experiments.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	var report strings.Builder
	report.WriteString("# S-Caffe reproduction — regenerated evaluation\n\n")
	for _, r := range runners {
		fmt.Fprintf(os.Stderr, "running %s: %s ...\n", r.ID, r.Desc)
		table, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		report.WriteString(table.Markdown())
	}
	fmt.Print(report.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}
