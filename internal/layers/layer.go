// Package layers implements Caffe-style neural-network layers with two
// faces: a real-compute face (actual float32 forward/backward math,
// used by correctness tests and small-model training) and a cost-model
// face (parameter counts and FLOP counts, used by the simulated
// training engine for paper-scale models). The per-layer parameter
// geometry is what drives S-Caffe's multi-stage communication, so it
// matches the original networks exactly.
package layers

import (
	"fmt"
	"math/rand"

	"scaffe/internal/tensor"
)

// Shape is the per-sample activation shape in CHW order.
type Shape struct {
	C, H, W int
}

// Elems returns C*H*W.
func (s Shape) Elems() int { return s.C * s.H * s.W }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Layer is one computational layer. Setup must be called before
// Forward/Backward; the cost-model methods (ParamElems, FwdFLOPs,
// BwdFLOPs, OutShape) are usable on an un-setup layer given an input
// shape.
type Layer interface {
	// Name returns the layer's instance name (e.g. "conv1").
	Name() string
	// Kind returns the layer type (e.g. "Convolution").
	Kind() string
	// OutShape returns the output shape for an input shape.
	OutShape(in Shape) Shape
	// ParamElems returns the number of learnable parameters given the
	// input shape (weights + biases).
	ParamElems(in Shape) int
	// FwdFLOPs returns the forward-pass FLOPs for one sample.
	FwdFLOPs(in Shape) float64
	// BwdFLOPs returns the backward-pass FLOPs for one sample.
	BwdFLOPs(in Shape) float64

	// Setup binds the layer to an input shape and batch size,
	// allocating parameters (initialized from rng) and buffers —
	// including the output and grad-input blobs that Forward/Backward
	// reuse, so steady-state iterations allocate nothing.
	Setup(in Shape, batch int, rng *rand.Rand)
	// Forward computes the layer output for a batch input of shape
	// (batch, in.C, in.H, in.W). The returned tensor is the layer's
	// preallocated output blob: it is overwritten by the next Forward
	// call, so callers must not retain it across iterations.
	Forward(in *tensor.Tensor) *tensor.Tensor
	// Backward consumes dLoss/dOut and returns dLoss/dIn, accumulating
	// parameter gradients. It must be called after Forward. Like
	// Forward, the result is a reused blob overwritten by the next
	// Backward call.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the learnable tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns the gradient tensors matching Params.
	Grads() []*tensor.Tensor
}

// base carries the bookkeeping every layer shares, including the
// preallocated blobs Forward/Backward hand out. Caffe sizes every blob
// once at net-setup time and reuses it for the life of the net; doing
// the same keeps the training hot path allocation-free.
type base struct {
	name  string
	in    Shape
	batch int

	out    *tensor.Tensor // reused Forward result
	gradIn *tensor.Tensor // reused Backward result
}

func (b *base) Name() string { return b.name }

func (b *base) setup(in Shape, batch int) {
	b.in = in
	b.batch = batch
}

// allocBlobs sizes the reusable output and grad-input blobs; layers
// call it from Setup once the output shape is known.
func (b *base) allocBlobs(out Shape) {
	b.out = tensor.New(b.batch, out.C, out.H, out.W)
	b.gradIn = tensor.New(b.batch, b.in.C, b.in.H, b.in.W)
}

func (b *base) checkIn(t *tensor.Tensor) {
	want := b.batch * b.in.Elems()
	if t.Len() != want {
		panic(fmt.Sprintf("layers: %s input has %d elements, want %d (batch %d x %v)",
			b.name, t.Len(), want, b.batch, b.in))
	}
}

// noParams is embedded by parameter-free layers.
type noParams struct{}

func (noParams) ParamElems(Shape) int     { return 0 }
func (noParams) Params() []*tensor.Tensor { return nil }
func (noParams) Grads() []*tensor.Tensor  { return nil }
