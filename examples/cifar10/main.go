// CIFAR-10 real-compute training: the distributed engine runs actual
// float32 math — every rank trains a real convolutional network on its
// shard of a synthetic CIFAR-shaped dataset, gradients are genuinely
// summed by the reduction tree, and the root solver's SGD updates are
// verified to match single-GPU training. This is the Figure 9 workload
// at a laptop-friendly scale.
package main

import (
	"fmt"
	"log"

	"scaffe"
)

func main() {
	builder, err := scaffe.RealNetBuilder("cifar10-quick")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := scaffe.SyntheticDataset("cifar10-quick", 4096, 11)
	if err != nil {
		log.Fatal(err)
	}

	base := scaffe.Config{
		Spec:        scaffe.MustModel("cifar10-quick"),
		RealNet:     builder,
		Dataset:     ds,
		GlobalBatch: 64,
		Iterations:  30,
		Design:      scaffe.SCOBR,
		Reduce:      scaffe.ReduceBinomial,
		Source:      scaffe.LMDB,
		BaseLR:      0.05,
		Momentum:    0.9,
		Seed:        7,

		CaptureFinalParams: true,
	}

	// Single solver...
	single := base
	single.GPUs = 1
	sres, err := scaffe.Train(single)
	if err != nil {
		log.Fatal(err)
	}

	// ...versus four data-parallel solvers on the same effective batch.
	multi := base
	multi.GPUs = 4
	mres, err := scaffe.Train(multi)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CIFAR10-quick, batch %d, %d iterations (real float32 training)\n",
		base.GlobalBatch, base.Iterations)
	fmt.Printf("  1 GPU : loss %.4f -> %.4f, %v/iter\n",
		sres.Losses[0], sres.Losses[len(sres.Losses)-1], sres.TimePerIter())
	fmt.Printf("  4 GPUs: loss %.4f -> %.4f, %v/iter (%.2fx faster)\n",
		mres.Losses[0], mres.Losses[len(mres.Losses)-1], mres.TimePerIter(),
		float64(sres.TotalTime)/float64(mres.TotalTime))

	// The gradient-aggregation equivalence that makes data-parallel
	// training exact: final parameters agree up to float reassociation.
	var maxDiff float64
	for i := range sres.FinalParams {
		d := float64(sres.FinalParams[i] - mres.FinalParams[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("  max |param(1 GPU) - param(4 GPUs)| = %.2e over %d parameters\n",
		maxDiff, len(sres.FinalParams))
	if maxDiff > 1e-3 {
		log.Fatal("distributed training diverged from single-GPU training")
	}
	fmt.Println("  distributed == single-GPU ✓")
}
