// Package models defines the networks the paper evaluates — AlexNet,
// CaffeNet, GoogLeNet, the CIFAR-10 quick model, and LeNet — in two
// forms: cost-model Specs with exact per-layer parameter and FLOP
// geometry (what the simulated 160-GPU sweeps train), and real
// layers.Net builders for the small models that the real-compute tests
// actually train.
package models

import (
	"fmt"

	"scaffe/internal/layers"
)

// LayerSpec is one layer's cost-model view: how many parameters it
// contributes (one reduction/broadcast unit) and how much compute its
// passes cost per sample.
type LayerSpec struct {
	Name       string
	Kind       string
	ParamElems int
	FwdFLOPs   float64 // per sample
	BwdFLOPs   float64 // per sample
	// OutElems is the per-sample output activation size, used by the
	// device-memory model (the missing data points of Figure 8 are
	// solvers that ran out of memory).
	OutElems int
}

// ParamBytes returns the parameter footprint in bytes (float32).
func (l LayerSpec) ParamBytes() int64 { return int64(l.ParamElems) * 4 }

// Spec is a network's cost-model description.
type Spec struct {
	Name    string
	Input   layers.Shape
	Classes int
	Layers  []LayerSpec
	// PerSampleBytes is the input data volume per sample (for data-
	// reader modeling): C*H*W bytes (8-bit images) plus label.
	PerSampleBytes int64
}

// TotalParams returns the total learnable parameter count.
func (s *Spec) TotalParams() int {
	t := 0
	for _, l := range s.Layers {
		t += l.ParamElems
	}
	return t
}

// ParamBytes returns the packed parameter/gradient buffer size — the
// paper's "256 MB buffers" for AlexNet-class models.
func (s *Spec) ParamBytes() int64 { return int64(s.TotalParams()) * 4 }

// ParamLayers returns the indices of layers carrying parameters, in
// forward order.
func (s *Spec) ParamLayers() []int {
	var idx []int
	for i, l := range s.Layers {
		if l.ParamElems > 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// ActivationElems returns the total per-sample activation footprint
// (sum of layer outputs), used by the device-memory model.
func (s *Spec) ActivationElems() int {
	t := 0
	for _, l := range s.Layers {
		t += l.OutElems
	}
	return t
}

// FwdFLOPs returns total forward FLOPs per sample.
func (s *Spec) FwdFLOPs() float64 {
	var t float64
	for _, l := range s.Layers {
		t += l.FwdFLOPs
	}
	return t
}

// BwdFLOPs returns total backward FLOPs per sample.
func (s *Spec) BwdFLOPs() float64 {
	var t float64
	for _, l := range s.Layers {
		t += l.BwdFLOPs
	}
	return t
}

// ByName returns the Spec for a model name.
func ByName(name string) (*Spec, error) {
	switch name {
	case "lenet":
		return SpecFromNet(BuildLeNet(1, 1)), nil
	case "cifar10-quick", "cifar10":
		return SpecFromNet(BuildCIFAR10Quick(1, 1)), nil
	case "alexnet":
		return AlexNet(), nil
	case "caffenet":
		return CaffeNet(), nil
	case "googlenet":
		return GoogLeNet(), nil
	case "vgg16", "vgg":
		return VGG16(), nil
	case "nin":
		return NetworkInNetwork(), nil
	case "tiny":
		return SpecFromNet(BuildTinyNet(1, 1)), nil
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}

// SpecFromNet derives a cost-model Spec from a real network, so the
// two execution modes always agree on geometry.
func SpecFromNet(n *layers.Net) *Spec {
	s := &Spec{
		Name:           n.Name,
		Input:          n.In,
		PerSampleBytes: int64(n.In.Elems()) + 4,
	}
	shape := n.In
	for _, l := range n.Layers {
		out := l.OutShape(shape)
		s.Layers = append(s.Layers, LayerSpec{
			Name:       l.Name(),
			Kind:       l.Kind(),
			ParamElems: l.ParamElems(shape),
			FwdFLOPs:   l.FwdFLOPs(shape),
			BwdFLOPs:   l.BwdFLOPs(shape),
			OutElems:   out.Elems(),
		})
		shape = out
	}
	s.Classes = shape.Elems()
	return s
}
