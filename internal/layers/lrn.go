package layers

import (
	"math"
	"math/rand"

	"scaffe/internal/tensor"
)

// LRN is across-channel local response normalization (AlexNet-era):
// out[c] = in[c] · (k + α/n · Σ_{c'∈window} in[c']²)^{-β}.
type LRN struct {
	base
	noParams
	Size        int
	Alpha, Beta float64
	K           float64

	lastIn  *tensor.Tensor
	lastOut *tensor.Tensor
	scale   []float32 // (k + α/n·Σ in²) per element
}

// NewLRN creates an LRN layer with AlexNet's defaults for unset
// hyper-parameters.
func NewLRN(name string, size int, alpha, beta float64) *LRN {
	return &LRN{base: base{name: name}, Size: size, Alpha: alpha, Beta: beta, K: 1}
}

// Kind implements Layer.
func (l *LRN) Kind() string { return "LRN" }

// OutShape implements Layer.
func (l *LRN) OutShape(in Shape) Shape { return in }

// FwdFLOPs implements Layer.
func (l *LRN) FwdFLOPs(in Shape) float64 { return float64(in.Elems() * (l.Size + 3)) }

// BwdFLOPs implements Layer.
func (l *LRN) BwdFLOPs(in Shape) float64 { return float64(in.Elems() * (l.Size + 4)) }

// Setup implements Layer.
func (l *LRN) Setup(in Shape, batch int, _ *rand.Rand) {
	l.setup(in, batch)
	l.scale = make([]float32, batch*in.Elems())
	l.allocBlobs(in)
}

func (l *LRN) window(c int) (lo, hi int) {
	half := l.Size / 2
	lo = c - half
	hi = c + half
	if lo < 0 {
		lo = 0
	}
	if hi > l.in.C-1 {
		hi = l.in.C - 1
	}
	return
}

// Forward implements Layer.
//
//scaffe:hotpath
func (l *LRN) Forward(in *tensor.Tensor) *tensor.Tensor {
	l.checkIn(in)
	l.lastIn = in
	out := l.out
	hw := l.in.H * l.in.W
	an := float32(l.Alpha / float64(l.Size))
	for b := 0; b < l.batch; b++ {
		off := b * l.in.Elems()
		for c := 0; c < l.in.C; c++ {
			lo, hi := l.window(c)
			for i := 0; i < hw; i++ {
				var ss float32
				for cc := lo; cc <= hi; cc++ {
					v := in.Data[off+cc*hw+i]
					ss += v * v
				}
				s := float32(l.K) + an*ss
				idx := off + c*hw + i
				l.scale[idx] = s
				out.Data[idx] = in.Data[idx] * float32(math.Pow(float64(s), -l.Beta))
			}
		}
	}
	l.lastOut = out
	return out
}

// Backward implements Layer.
//
//scaffe:hotpath
func (l *LRN) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := l.gradIn
	gradIn.Zero() // direct and cross terms accumulate below
	hw := l.in.H * l.in.W
	an := float32(l.Alpha / float64(l.Size))
	beta := float32(l.Beta)
	for b := 0; b < l.batch; b++ {
		off := b * l.in.Elems()
		for c := 0; c < l.in.C; c++ {
			lo, hi := l.window(c)
			for i := 0; i < hw; i++ {
				idx := off + c*hw + i
				s := l.scale[idx]
				pw := float32(math.Pow(float64(s), -l.Beta))
				// Direct term.
				gradIn.Data[idx] += gradOut.Data[idx] * pw
				// Cross terms: d out[c'] / d in[c] for c in the window
				// of c'. Iterate the symmetric window.
				for cc := lo; cc <= hi; cc++ {
					jdx := off + c*hw + i
					kdx := off + cc*hw + i
					scc := l.scale[kdx]
					pwc := float32(math.Pow(float64(scc), -l.Beta))
					gradIn.Data[jdx] += gradOut.Data[kdx] *
						(-2 * beta * an * l.lastIn.Data[kdx] * l.lastIn.Data[jdx] * pwc / scc)
				}
			}
		}
	}
	return gradIn
}
