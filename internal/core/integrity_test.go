package core

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"scaffe/internal/coll"
	"scaffe/internal/fault"
	"scaffe/internal/models"
	"scaffe/internal/sim"
)

// TestIntegrityValidation pins the plane's configuration rules: the
// corruption event kinds need the plane armed (and bitflip real
// compute), and the plane itself needs a root-broadcast design.
func TestIntegrityValidation(t *testing.T) {
	spec, _ := models.ByName("tiny")
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad mode", func(c *Config) { c.Integrity = IntegrityMode(9) }},
		{"bitflip without real net", func(c *Config) {
			c.Integrity = IntegrityRecover
			c.Faults = fault.Schedule{{Kind: fault.BitFlip, Rank: 0, Bit: 1}}
		}},
		{"bitflip without integrity", func(c *Config) {
			c.Faults = fault.Schedule{{Kind: fault.BitFlip, Rank: 0, Bit: 1}}
		}},
		{"corrupt-wire without integrity", func(c *Config) {
			c.Faults = fault.Schedule{{Kind: fault.CorruptWire, Src: 0, Dst: 1, N: 1}}
		}},
		{"integrity on model parallel", func(c *Config) {
			c.Design = ModelParallel
			c.Integrity = IntegrityDetect
		}},
		{"negative retransmit budget", func(c *Config) { c.RetransmitBudget = -1 }},
		{"negative diverge factor", func(c *Config) { c.DivergeFactor = -2 }},
	}
	for _, tc := range cases {
		cfg := timingConfig(spec, 4, 16, 2)
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

// TestParseIntegrityMode covers the CLI spellings.
func TestParseIntegrityMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want IntegrityMode
	}{{"off", IntegrityOff}, {"", IntegrityOff}, {"detect", IntegrityDetect}, {"recover", IntegrityRecover}} {
		got, err := ParseIntegrityMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseIntegrityMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseIntegrityMode("paranoid"); err == nil {
		t.Error("unknown mode should error")
	}
}

// TestIntegrityArmedUntrippedIsByteIdentical is the golden no-overhead
// check: arming the full integrity plane (checksummed receives,
// watchdog, last-good copies) without injecting anything must leave
// the run byte-identical to the unarmed one — same virtual end time,
// same losses, same final parameters.
func TestIntegrityArmedUntrippedIsByteIdentical(t *testing.T) {
	base, err := Run(tinyRealConfig(4, 32, 8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyRealConfig(4, 32, 8)
	cfg.Integrity = IntegrityRecover
	armed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if armed.TotalTime != base.TotalTime {
		t.Errorf("armed-but-untripped plane changed the run: %v vs %v", armed.TotalTime, base.TotalTime)
	}
	if !reflect.DeepEqual(armed.Losses, base.Losses) {
		t.Error("armed-but-untripped plane changed the losses")
	}
	if !reflect.DeepEqual(armed.FinalParams, base.FinalParams) {
		t.Error("armed-but-untripped plane changed the final parameters")
	}
	ir := armed.Integrity
	if ir == nil || ir.Mode != IntegrityRecover {
		t.Fatalf("integrity report = %+v", ir)
	}
	if ir.Verified == 0 {
		t.Error("armed plane verified no transfers")
	}
	if ir.Detected != 0 || ir.Retransmitted != 0 || ir.WatchdogTrips != 0 || ir.Rollbacks != 0 || ir.Escalations != 0 {
		t.Errorf("clean run tripped the plane: %v", ir)
	}
	if base.Integrity != nil {
		t.Error("unarmed run carries an integrity report")
	}
}

// TestSDCDrillRecoversBitIdentically is the end-to-end acceptance
// drill in real-compute mode: parameter bit flips at the root plus
// wire corruption on the reduction links, every event detected, every
// repair exact — the corrupted run's losses and final parameters match
// the fault-free golden run bit for bit.
func TestSDCDrillRecoversBitIdentically(t *testing.T) {
	golden, err := Run(tinyRealConfig(4, 32, 12))
	if err != nil {
		t.Fatal(err)
	}
	gt := float64(golden.TotalTime)

	cfg := tinyRealConfig(4, 32, 12)
	cfg.Integrity = IntegrityRecover
	// Flips target the root's resident parameters (bit 30 lands in the
	// exponent, so the pre-update param scan always sees the blow-up);
	// wire events cover every link of the 4-rank binomial tree.
	cfg.Faults = fault.Schedule{
		{At: sim.Time(gt * 0.25), Kind: fault.BitFlip, Rank: 0, Word: 64, Bit: 30},
		{At: sim.Time(gt * 0.45), Kind: fault.BitFlip, Rank: 0, Word: 128, Bit: 30},
		{At: sim.Time(gt * 0.70), Kind: fault.BitFlip, Rank: 0, Word: 192, Bit: 30},
		{At: sim.Time(gt * 0.20), Kind: fault.CorruptWire, Src: 1, Dst: 0, N: 1},
		{At: sim.Time(gt * 0.50), Kind: fault.CorruptWire, Src: 3, Dst: 2, N: 1},
		{At: sim.Time(gt * 0.60), Kind: fault.CorruptWire, Src: 2, Dst: 0, N: 1},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ir := res.Integrity
	if ir == nil {
		t.Fatal("no integrity report")
	}
	if ir.Detected != 3 || ir.Retransmitted != 3 || ir.Escalations != 0 {
		t.Errorf("wire corruption not fully healed: %v", ir)
	}
	if ir.WatchdogTrips != 3 || ir.Rollbacks != 3 || ir.QuarantinedBatches != 0 {
		t.Errorf("bit flips not fully healed: %v", ir)
	}
	if res.Fault.BitFlips != 3 || res.Fault.WireCorruptions != 3 {
		t.Errorf("fault report = %v", res.Fault)
	}
	if !reflect.DeepEqual(res.Losses, golden.Losses) {
		t.Fatal("recovered losses differ from the fault-free golden run")
	}
	if len(res.FinalParams) != len(golden.FinalParams) {
		t.Fatalf("param count %d != %d", len(res.FinalParams), len(golden.FinalParams))
	}
	for i := range golden.FinalParams {
		if res.FinalParams[i] != golden.FinalParams[i] {
			t.Fatalf("param %d: recovered %v != golden %v (recovery is not bit-exact)",
				i, res.FinalParams[i], golden.FinalParams[i])
		}
	}
	if res.TotalTime <= golden.TotalTime {
		t.Error("repair took no virtual time")
	}
}

// TestSDCDetectModeObservesOnly pins detect-only semantics: corruption
// is counted but flows on — no retransmits, no rollbacks — and the run
// still completes. This is the behavior behind scaffe-train's exit
// code 4.
func TestSDCDetectModeObservesOnly(t *testing.T) {
	golden, err := Run(tinyRealConfig(4, 32, 12))
	if err != nil {
		t.Fatal(err)
	}
	gt := float64(golden.TotalTime)

	cfg := tinyRealConfig(4, 32, 12)
	cfg.Integrity = IntegrityDetect
	cfg.Faults = fault.Schedule{
		{At: sim.Time(gt * 0.3), Kind: fault.CorruptWire, Src: 1, Dst: 0, N: 1},
		{At: sim.Time(gt * 0.6), Kind: fault.CorruptWire, Src: 2, Dst: 0, N: 1},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ir := res.Integrity
	if ir.Detected != 2 {
		t.Errorf("detected %d corruptions, want 2", ir.Detected)
	}
	if ir.Retransmitted != 0 || ir.Rollbacks != 0 || ir.Escalations != 0 {
		t.Errorf("detect mode repaired something: %v", ir)
	}
	// Observe-only means the corrupted gradients really were applied.
	if reflect.DeepEqual(res.Losses, golden.Losses) {
		t.Error("detect mode losses identical to golden: the corruption did not flow on")
	}
	if len(res.Losses) != cfg.Iterations {
		t.Errorf("run did not complete: %d losses", len(res.Losses))
	}
}

// TestSDCQuarantineAfterExhaustedRetries forces the quarantine path:
// with IntegrityRetries negative the first watchdog trip condemns the
// batch, its update is skipped, and training continues.
func TestSDCQuarantineAfterExhaustedRetries(t *testing.T) {
	golden, err := Run(tinyRealConfig(4, 32, 12))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyRealConfig(4, 32, 12)
	cfg.Integrity = IntegrityRecover
	cfg.IntegrityRetries = -1
	cfg.Faults = fault.Schedule{
		{At: sim.Time(float64(golden.TotalTime) * 0.5), Kind: fault.BitFlip, Rank: 0, Word: 96, Bit: 30},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ir := res.Integrity
	if ir.WatchdogTrips != 1 || ir.Rollbacks != 1 || ir.QuarantinedBatches != 1 {
		t.Errorf("quarantine path: %v", ir)
	}
	if len(res.Losses) != cfg.Iterations {
		t.Fatalf("run did not complete: %d losses", len(res.Losses))
	}
	for i, l := range res.Losses {
		if math.IsNaN(float64(l)) || math.IsInf(float64(l), 0) {
			t.Fatalf("loss %d = %v after quarantine", i, l)
		}
	}
}

// TestSDCScaleDrillDeterministic is the acceptance-scale drill: a
// 32-rank GoogLeNet run with 24 wire-corruption events across the
// chain-reduce links, all detected and retransmitted, bit-identical
// across trials and GOMAXPROCS settings.
func TestSDCScaleDrillDeterministic(t *testing.T) {
	mk := func() Config {
		cfg := timingConfig(models.GoogLeNet(), 32, 1024, 6)
		cfg.Nodes, cfg.GPUsPerNode = 8, 4
		cfg.Reduce = coll.Chain
		return cfg
	}
	base, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	bt := float64(base.TotalTime)

	cfg := mk()
	cfg.Integrity = IntegrityRecover
	// One corruption per chain link (k+1)->k, spread over the middle of
	// the run; every link carries checksummed chunks each iteration.
	for k := 0; k < 24; k++ {
		frac := 0.1 + 0.7*float64(k)/24
		cfg.Faults = append(cfg.Faults, fault.Event{
			At: sim.Time(bt * frac), Kind: fault.CorruptWire, Src: k + 1, Dst: k, N: 1,
		})
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ir := first.Integrity
	if ir.Detected != 24 || ir.Retransmitted != 24 || ir.Escalations != 0 {
		t.Fatalf("drill did not detect/heal all 24 events: %v", ir)
	}
	if ir.Verified == 0 {
		t.Error("no verified transfers")
	}
	if first.Fault.WireCorruptions != 24 {
		t.Errorf("fault report = %v", first.Fault)
	}

	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	for trial := 0; trial < 3; trial++ {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalTime != first.TotalTime {
			t.Fatalf("trial %d: total time %v != %v", trial, res.TotalTime, first.TotalTime)
		}
		if !reflect.DeepEqual(res.Integrity, first.Integrity) {
			t.Fatalf("trial %d: integrity report diverged:\n%+v\n%+v", trial, res.Integrity, first.Integrity)
		}
	}
}

// TestChunkRetryBudgetEscalates pins the escalation path: a wire that
// corrupts every transmission of a chunk (including retransmissions)
// exhausts the retry budget and revokes the communicator, handing the
// run to the full recovery path.
func TestChunkRetryBudgetEscalates(t *testing.T) {
	golden, err := Run(tinyRealConfig(4, 32, 12))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyRealConfig(4, 32, 12)
	cfg.Integrity = IntegrityRecover
	cfg.RetransmitBudget = 1
	gt := float64(golden.TotalTime)
	// Three corruptions armed on one link: the retransmission of the
	// first consumes the second, exhausting the budget of 1.
	cfg.Faults = fault.Schedule{
		{At: sim.Time(gt * 0.4), Kind: fault.CorruptWire, Src: 1, Dst: 0, N: 1},
		{At: sim.Time(gt * 0.4), Kind: fault.CorruptWire, Src: 1, Dst: 0, N: 2},
		{At: sim.Time(gt * 0.4), Kind: fault.CorruptWire, Src: 1, Dst: 0, N: 3},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ir := res.Integrity
	if ir.Escalations == 0 {
		t.Fatalf("no escalation despite exhausted budget: %v", ir)
	}
	if len(res.Losses) != cfg.Iterations {
		t.Fatalf("run did not complete after escalation: %d losses", len(res.Losses))
	}
	for i, l := range res.Losses {
		if math.IsNaN(float64(l)) || math.IsInf(float64(l), 0) {
			t.Fatalf("loss %d = %v after escalation", i, l)
		}
	}
}
