package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds the module-wide static call graph the interprocedural
// passes propagate contracts over (DESIGN.md §15). Nodes are function
// declarations and function literals of the loaded packages; edges are:
//
//   - direct calls resolved through go/types;
//   - interface dispatch, expanded to the implementing set: a call
//     through interface method I.m edges to T.m for every named module
//     type T (or *T) implementing I;
//   - calls through function-typed struct fields, edged to every
//     function value ever stored into that field anywhere in the load —
//     including values that flow through one parameter into a field
//     store (sched.Graph.Add storing its action argument into
//     Node.action is the motivating case);
//   - bare references (method values, callback registrations, function
//     arguments): mentioning a module function without calling it is
//     treated as "may invoke from this context", which over-approximates
//     exactly the way a contract checker must.
//
// Two things cut edges out of contract propagation:
//
//   - //scaffe:coldpath (declaration- or call-site-level, reason
//     mandatory) marks a deliberate slow path — see propagate.go;
//   - stage guards: an edge whose call site sits in serial context
//     (inside or after a Proc.stage check, or after a Proc.Exclusive
//     demotion — see exclusive.go) cannot run speculatively, so the
//     //scaffe:parallel obligation does not flow through it. The hotpath
//     obligation still does: guarding is about concurrency, not heat.
//
// Calls inside panic arguments create no edges at all: a panicking path
// has already left both the steady state and the speculative segment.

// FuncNode is one call-graph node: a declared function/method, or a
// function literal (which analyzes as its own body even though it nests
// lexically inside a declaration).
type FuncNode struct {
	Pkg  *Pkg
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Obj  *types.Func   // nil for literals
	Encl *FuncNode     // for literals: the enclosing node
	Name string        // "sched.Graph.runNode", "core.addForward.func"

	// Hot/Par are the direct annotations; ColdReason is a non-empty
	// declaration-level //scaffe:coldpath reason.
	Hot, Par   bool
	ColdReason string

	edges []edge
}

// Body returns the node's function body.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// edge is one may-call relation.
type edge struct {
	to *FuncNode
	// serial marks a call site in serial context (stage-guarded or
	// post-Exclusive): the parallel obligation does not propagate.
	serial bool
	// cold marks a call site suppressed by //scaffe:coldpath: no
	// obligation propagates.
	cold bool
}

// CallGraph is the module-wide may-call graph.
type CallGraph struct {
	Nodes []*FuncNode // deterministic (package, file, position) order
	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode

	// fieldStores maps a function-typed struct field to every function
	// value stored into it anywhere in the load.
	fieldStores map[*types.Var][]*FuncNode
	// paramFields summarizes "function f stores parameter i into field
	// v": arguments at f's call sites flow into v's store set.
	paramFields map[*types.Func][]paramField
	// implCache memoizes interface-method -> implementing-set expansion.
	implCache map[*types.Func][]*FuncNode
	// namedTypes lists every named (non-interface) type of the load,
	// for implementing-set queries.
	namedTypes []*types.Named
}

type paramField struct {
	index int
	field *types.Var
}

// NodesOf returns the graph nodes declared in pkg, in file order.
func (g *CallGraph) NodesOf(pkg *Pkg) []*FuncNode {
	var out []*FuncNode
	for _, n := range g.Nodes {
		if n.Pkg == pkg {
			out = append(out, n)
		}
	}
	return out
}

// buildCallGraph indexes every function of the loaded packages and
// wires the may-call edges.
func buildCallGraph(pkgs []*Pkg) *CallGraph {
	g := &CallGraph{
		byObj:       make(map[*types.Func]*FuncNode),
		byLit:       make(map[*ast.FuncLit]*FuncNode),
		fieldStores: make(map[*types.Var][]*FuncNode),
		paramFields: make(map[*types.Func][]paramField),
		implCache:   make(map[*types.Func][]*FuncNode),
	}
	for _, pkg := range pkgs {
		g.indexPackage(pkg)
	}
	for _, pkg := range pkgs {
		g.collectStores(pkg)
	}
	for _, n := range g.Nodes {
		g.collectArgFlows(n)
	}
	for _, n := range g.Nodes {
		g.buildEdges(n)
	}
	return g
}

// indexPackage creates nodes for every declaration and literal of pkg
// and records the package's named types.
func (g *CallGraph) indexPackage(pkg *Pkg) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
				g.namedTypes = append(g.namedTypes, named)
			}
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			n := &FuncNode{
				Pkg:        pkg,
				Decl:       fd,
				Obj:        obj,
				Name:       declName(pkg, fd),
				Hot:        isHotpath(fd),
				Par:        isParallelSection(fd),
				ColdReason: coldpathReason(fd),
			}
			g.Nodes = append(g.Nodes, n)
			if obj != nil {
				g.byObj[obj] = n
			}
			g.indexLiterals(n)
		}
	}
}

// indexLiterals creates a node per function literal nested in n's body,
// named after the nearest enclosing declaration.
func (g *CallGraph) indexLiterals(n *FuncNode) {
	var walk func(encl *FuncNode, body *ast.BlockStmt)
	walk = func(encl *FuncNode, body *ast.BlockStmt) {
		ast.Inspect(body, func(x ast.Node) bool {
			lit, ok := x.(*ast.FuncLit)
			if !ok {
				return true
			}
			ln := &FuncNode{
				Pkg:  encl.Pkg,
				Lit:  lit,
				Encl: encl,
				Name: encl.Name + ".func",
			}
			g.Nodes = append(g.Nodes, ln)
			g.byLit[lit] = ln
			walk(ln, lit.Body)
			return false // the nested walk handles deeper literals
		})
	}
	walk(n, n.Decl.Body)
}

// declName renders "pkg.Func" or "pkg.Recv.Method".
func declName(pkg *Pkg, fd *ast.FuncDecl) string {
	base := pkg.Path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return base + "." + id.Name + "." + fd.Name.Name
		}
	}
	return base + "." + fd.Name.Name
}

// funcValueNode resolves an expression used as a function value to its
// graph node: a function literal, or a reference to a module function.
func (g *CallGraph) funcValueNode(pkg *Pkg, expr ast.Expr) *FuncNode {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		return g.byLit[e]
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return g.byObj[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return g.byObj[fn]
		}
	}
	return nil
}

// collectStores records, for every assignment and composite literal of
// pkg, function values stored into function-typed struct fields — plus
// the parameter-to-field summaries that let call-site arguments flow
// into those fields.
func (g *CallGraph) collectStores(pkg *Pkg) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := paramVars(pkg, fd)
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				switch node := x.(type) {
				case *ast.AssignStmt:
					for i, lhs := range node.Lhs {
						if i >= len(node.Rhs) {
							break
						}
						field := fieldVarOf(pkg, lhs)
						if field == nil || !isFuncType(field.Type()) {
							continue
						}
						g.recordStore(pkg, fd, params, field, node.Rhs[i])
					}
				case *ast.CompositeLit:
					g.collectLitStores(pkg, fd, params, node)
				}
				return true
			})
		}
	}
}

// collectLitStores handles T{f: fn} and positional T{..., fn, ...}.
func (g *CallGraph) collectLitStores(pkg *Pkg, fd *ast.FuncDecl, params map[*types.Var]int, lit *ast.CompositeLit) {
	t := pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var field *types.Var
		var val ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == key.Name {
					field = st.Field(j)
					break
				}
			}
			val = kv.Value
		} else if i < st.NumFields() {
			field, val = st.Field(i), elt
		}
		if field == nil || !isFuncType(field.Type()) {
			continue
		}
		g.recordStore(pkg, fd, params, field, val)
	}
}

// recordStore files one function-value store: directly into the field's
// store set, or — when the value is a parameter of the enclosing
// function — as a parameter-to-field summary.
func (g *CallGraph) recordStore(pkg *Pkg, fd *ast.FuncDecl, params map[*types.Var]int, field *types.Var, val ast.Expr) {
	if n := g.funcValueNode(pkg, val); n != nil {
		g.fieldStores[field] = append(g.fieldStores[field], n)
		return
	}
	if id, ok := ast.Unparen(val).(*ast.Ident); ok {
		if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
			if idx, isParam := params[v]; isParam {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.paramFields[obj] = append(g.paramFields[obj], paramField{index: idx, field: field})
				}
			}
		}
	}
}

// collectArgFlows applies the parameter-to-field summaries at call
// sites: an argument that resolves to a function node and flows into a
// summarized parameter joins that field's store set.
func (g *CallGraph) collectArgFlows(n *FuncNode) {
	pkg := n.Pkg
	inspectBody(n, func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(pkg, call)
		if fn == nil {
			return
		}
		summaries := g.paramFields[fn]
		if len(summaries) == 0 {
			return
		}
		// Methods: the summary indexes declared parameters, matching
		// call.Args directly (receiver is not an argument).
		for _, pf := range summaries {
			if pf.index < len(call.Args) {
				if an := g.funcValueNode(pkg, call.Args[pf.index]); an != nil {
					g.fieldStores[pf.field] = append(g.fieldStores[pf.field], an)
				}
			}
		}
	})
}

// buildEdges wires n's outgoing edges.
func (g *CallGraph) buildEdges(n *FuncNode) {
	pkg := n.Pkg
	serial := serialSpans(pkg, n.Body())
	cold := coldCallLines(pkg, n)
	addEdge := func(to *FuncNode, site token.Pos) {
		if to == nil || to == n {
			return
		}
		line := pkg.Fset.Position(site).Line
		n.edges = append(n.edges, edge{
			to:     to,
			serial: serial.contains(site),
			cold:   cold[line],
		})
	}
	inspectBody(n, func(x ast.Node) {
		switch node := x.(type) {
		case *ast.CallExpr:
			g.callEdges(n, node, addEdge)
		case *ast.FuncLit:
			addEdge(g.byLit[node], node.Pos())
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[node].(*types.Func); ok {
				addEdge(g.byObj[fn], node.Pos())
			}
		}
	})
}

// callEdges resolves one call expression to its may-call targets.
// Reference edges for the callee expression come from the Ident walk in
// buildEdges (a direct call's callee identifier resolves to the same
// node, deduplicated by propagation); this handles the dispatch forms
// identifiers cannot express.
func (g *CallGraph) callEdges(n *FuncNode, call *ast.CallExpr, addEdge func(*FuncNode, token.Pos)) {
	pkg := n.Pkg
	if fn := calleeFunc(pkg, call); fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
			for _, impl := range g.implementers(fn) {
				addEdge(impl, call.Pos())
			}
			return
		}
		addEdge(g.byObj[fn], call.Pos())
		return
	}
	// Call through a function-typed struct field: every stored value.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if field := fieldVarOf(pkg, sel); field != nil {
			for _, stored := range g.fieldStores[field] {
				addEdge(stored, call.Pos())
			}
		}
	}
}

// implementers expands an interface method to the concrete module
// methods that may answer it.
func (g *CallGraph) implementers(fn *types.Func) []*FuncNode {
	if impls, ok := g.implCache[fn]; ok {
		return impls
	}
	iface, ok := fn.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	var impls []*FuncNode
	if ok {
		for _, named := range g.namedTypes {
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, fn.Pkg(), fn.Name())
			if m, ok := obj.(*types.Func); ok {
				if node := g.byObj[m]; node != nil {
					impls = append(impls, node)
				}
			}
		}
	}
	g.implCache[fn] = impls
	return impls
}

// inspectBody walks n's own body, skipping nested function literals
// (they are their own nodes) and panic arguments (cold by definition).
func inspectBody(n *FuncNode, visit func(ast.Node)) {
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(x ast.Node) bool {
			if x == nil {
				return false
			}
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
				visit(x) // the literal itself is visible (reference edge)
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := n.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
						return false
					}
				}
			}
			visit(x)
			return true
		})
	}
	walk(n.Body())
}

// --- small type helpers ----------------------------------------------------

// paramVars maps fd's parameter objects to their declared index.
func paramVars(pkg *Pkg, fd *ast.FuncDecl) map[*types.Var]int {
	m := make(map[*types.Var]int)
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					m[v] = i
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	return m
}

// fieldVarOf resolves expr to the struct field it selects, or nil.
func fieldVarOf(pkg *Pkg, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

func isFuncType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}
